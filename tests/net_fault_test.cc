#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/interval.h"
#include "engine/multi_system.h"
#include "engine/system.h"
#include "net/fault_pipeline.h"
#include "net/network_model.h"
#include "sim/scheduler.h"

/// \file
/// Fault injection and the disruption-tolerant control plane (DESIGN.md
/// §11): the composable `--net=` stage grammar, the zero-rate ≡ instant
/// contract, seed-determinism of the fault schedule (serial and sharded),
/// the crossing conservation invariant, the deploy retransmission state
/// machine (timeout, duplicate suppression, supersession, backoff cap),
/// probe failover, bounded reordering, partition-reconnect reconciliation,
/// and staleness compensation.

namespace asf {
namespace {

// ---------------------------------------------------------------- parsing

TEST(NetFaultSpecTest, ParsesEveryStage) {
  auto loss = ParseNetSpec("loss:0.1");
  ASSERT_TRUE(loss.ok());
  EXPECT_EQ(loss->kind, NetConfig::Kind::kInstant);
  EXPECT_DOUBLE_EQ(loss->loss, 0.1);
  EXPECT_DOUBLE_EQ(loss->loss_burst, 1);
  EXPECT_TRUE(loss->HasFaults());
  EXPECT_TRUE(loss->DelaysDelivery());
  EXPECT_EQ(loss->ToString(), "loss:0.1");

  auto burst = ParseNetSpec("loss:0.1:4");
  ASSERT_TRUE(burst.ok());
  EXPECT_DOUBLE_EQ(burst->loss_burst, 4);
  EXPECT_EQ(burst->ToString(), "loss:0.1:4");

  auto reorder = ParseNetSpec("reorder:3");
  ASSERT_TRUE(reorder.ok());
  EXPECT_EQ(reorder->reorder, 3u);
  EXPECT_EQ(reorder->ToString(), "reorder:3");

  auto partition = ParseNetSpec("partition:100,200,350");
  ASSERT_TRUE(partition.ok());
  ASSERT_EQ(partition->partition.size(), 3u);
  EXPECT_DOUBLE_EQ(partition->partition[1], 200);
  EXPECT_EQ(partition->ToString(), "partition:100,200,350");

  auto composite =
      ParseNetSpec("latency:5:2+loss:0.05:3+reorder:2+partition:10,20"
                   "+rto:4:32+comp:1.5+norecon");
  ASSERT_TRUE(composite.ok());
  EXPECT_EQ(composite->kind, NetConfig::Kind::kFixedLatency);
  EXPECT_DOUBLE_EQ(composite->latency, 5);
  EXPECT_DOUBLE_EQ(composite->jitter, 2);
  EXPECT_DOUBLE_EQ(composite->loss, 0.05);
  EXPECT_DOUBLE_EQ(composite->loss_burst, 3);
  EXPECT_EQ(composite->reorder, 2u);
  EXPECT_DOUBLE_EQ(composite->rto, 4);
  EXPECT_DOUBLE_EQ(composite->rto_max, 32);
  EXPECT_DOUBLE_EQ(composite->comp, 1.5);
  EXPECT_FALSE(composite->reconcile);
  // Canonical round trip.
  EXPECT_EQ(composite->ToString(),
            "latency:5:2+loss:0.05:3+reorder:2+partition:10,20+rto:4:32"
            "+comp:1.5+norecon");
  auto again = ParseNetSpec(composite->ToString());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->ToString(), composite->ToString());

  // Zero-rate stages parse and are recognized as fault-free.
  auto zero = ParseNetSpec("loss:0");
  ASSERT_TRUE(zero.ok());
  EXPECT_FALSE(zero->HasFaults());
  EXPECT_FALSE(zero->DelaysDelivery());
  auto zreorder = ParseNetSpec("reorder:0");
  ASSERT_TRUE(zreorder.ok());
  EXPECT_FALSE(zreorder->HasFaults());
  EXPECT_FALSE(zreorder->DelaysDelivery());

  // An explicit base composes with stages.
  auto batched = ParseNetSpec("batch:10+loss:0.2");
  ASSERT_TRUE(batched.ok());
  EXPECT_EQ(batched->kind, NetConfig::Kind::kBatched);
  EXPECT_DOUBLE_EQ(batched->delta, 10);
  EXPECT_DOUBLE_EQ(batched->loss, 0.2);
}

TEST(NetFaultSpecTest, RejectsMalformedStages) {
  // Out-of-range probabilities and burst lengths.
  EXPECT_FALSE(ParseNetSpec("loss:1.5").ok());
  EXPECT_FALSE(ParseNetSpec("loss:-0.1").ok());
  EXPECT_FALSE(ParseNetSpec("loss:abc").ok());
  EXPECT_FALSE(ParseNetSpec("loss:0.1:0.5").ok());  // burst < 1
  EXPECT_FALSE(ParseNetSpec("loss:").ok());
  // Gilbert-Elliott feasibility: burst b needs loss <= b/(b+1).
  EXPECT_FALSE(ParseNetSpec("loss:0.9:2").ok());
  // Reorder must be a bounded non-negative integer.
  EXPECT_FALSE(ParseNetSpec("reorder:-1").ok());
  EXPECT_FALSE(ParseNetSpec("reorder:1.5").ok());
  EXPECT_FALSE(ParseNetSpec("reorder:").ok());
  EXPECT_FALSE(ParseNetSpec("reorder:2:3").ok());
  // Partition boundaries must be strictly increasing and well-formed.
  EXPECT_FALSE(ParseNetSpec("partition:").ok());
  EXPECT_FALSE(ParseNetSpec("partition:5,3").ok());
  EXPECT_FALSE(ParseNetSpec("partition:5,5").ok());
  EXPECT_FALSE(ParseNetSpec("partition:-1,5").ok());
  EXPECT_FALSE(ParseNetSpec("partition:1,2,").ok());
  // Rto must be positive; the cap must cover the initial timeout.
  EXPECT_FALSE(ParseNetSpec("rto:0").ok());
  EXPECT_FALSE(ParseNetSpec("rto:-2").ok());
  EXPECT_FALSE(ParseNetSpec("rto:8:4").ok());
  // Compensation must be non-negative.
  EXPECT_FALSE(ParseNetSpec("comp:-1").ok());
  // Structural errors: duplicate stages, second base, empty stage,
  // parameters where none belong, unknown stages.
  EXPECT_FALSE(ParseNetSpec("loss:0.1+loss:0.2").ok());
  EXPECT_FALSE(ParseNetSpec("reorder:1+reorder:2").ok());
  EXPECT_FALSE(ParseNetSpec("latency:1+batch:2").ok());
  EXPECT_FALSE(ParseNetSpec("instant+instant").ok());
  EXPECT_FALSE(ParseNetSpec("loss:0.1++reorder:2").ok());
  EXPECT_FALSE(ParseNetSpec("norecon:1").ok());
  EXPECT_FALSE(ParseNetSpec("norecon+norecon").ok());
  EXPECT_FALSE(ParseNetSpec("warp:0.1").ok());
  EXPECT_FALSE(ParseNetSpec("latency:1+warp").ok());
  // The diagnostic names the offending stage.
  auto bad = ParseNetSpec("latency:2+warp:1");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("warp"), std::string::npos);
}

// ------------------------------------------------ shared run scaffolding

SystemConfig BaseConfig(ProtocolKind protocol, const QuerySpec& query,
                        double eps, std::size_t rank_r) {
  SystemConfig config;
  RandomWalkConfig walk;
  walk.num_streams = 200;
  walk.seed = 23;
  config.source = SourceSpec::Walk(walk);
  config.query = query;
  config.protocol = protocol;
  config.fraction = {eps, eps};
  config.rank_r = rank_r;
  config.duration = 400;
  config.seed = 23;
  config.oracle.sample_interval = 25;
  return config;
}

struct ProtoCase {
  const char* label;
  ProtocolKind protocol;
  QuerySpec query;
  double eps;
  std::size_t rank_r;
};

const ProtoCase kAllProtocols[] = {
    {"no-filter", ProtocolKind::kNoFilter, QuerySpec::Range(400, 600), 0, 0},
    {"zt-nrp", ProtocolKind::kZtNrp, QuerySpec::Range(400, 600), 0, 0},
    {"ft-nrp", ProtocolKind::kFtNrp, QuerySpec::Range(400, 600), 0.3, 0},
    {"rtp", ProtocolKind::kRtp, QuerySpec::Knn(5, 500), 0, 3},
    {"zt-rp", ProtocolKind::kZtRp, QuerySpec::Knn(5, 500), 0, 0},
    {"ft-rp", ProtocolKind::kFtRp, QuerySpec::Knn(10, 500), 0.3, 0},
};

void ExpectSameRun(const RunResult& a, const RunResult& b,
                   const char* label) {
  for (int phase = 0; phase < kNumMessagePhases; ++phase) {
    for (int type = 0; type < kNumMessageTypes; ++type) {
      EXPECT_EQ(a.messages.count(static_cast<MessagePhase>(phase),
                                 static_cast<MessageType>(type)),
                b.messages.count(static_cast<MessagePhase>(phase),
                                 static_cast<MessageType>(type)))
          << label << " phase=" << phase << " type=" << type;
    }
  }
  EXPECT_EQ(a.updates_generated, b.updates_generated) << label;
  EXPECT_EQ(a.updates_reported, b.updates_reported) << label;
  EXPECT_EQ(a.reinits, b.reinits) << label;
  EXPECT_EQ(a.answer_size.count(), b.answer_size.count()) << label;
  EXPECT_DOUBLE_EQ(a.answer_size.mean(), b.answer_size.mean()) << label;
  EXPECT_EQ(a.oracle_checks, b.oracle_checks) << label;
  EXPECT_EQ(a.oracle_violations, b.oracle_violations) << label;
  EXPECT_DOUBLE_EQ(a.max_f_plus, b.max_f_plus) << label;
  EXPECT_DOUBLE_EQ(a.max_f_minus, b.max_f_minus) << label;
}

void ExpectSameNetStats(const NetStats& a, const NetStats& b,
                        const char* label) {
  EXPECT_EQ(a.crossings, b.crossings) << label;
  EXPECT_EQ(a.update_messages, b.update_messages) << label;
  EXPECT_EQ(a.update_payloads, b.update_payloads) << label;
  EXPECT_EQ(a.delivered_crossings, b.delivered_crossings) << label;
  EXPECT_EQ(a.dropped_loss, b.dropped_loss) << label;
  EXPECT_EQ(a.dropped_partition, b.dropped_partition) << label;
  EXPECT_EQ(a.dropped_retired, b.dropped_retired) << label;
  EXPECT_EQ(a.suppressed_stale, b.suppressed_stale) << label;
  EXPECT_EQ(a.deploy_attempts, b.deploy_attempts) << label;
  EXPECT_EQ(a.deploy_retransmits, b.deploy_retransmits) << label;
  EXPECT_EQ(a.deploy_dropped, b.deploy_dropped) << label;
  EXPECT_EQ(a.deploy_acks, b.deploy_acks) << label;
  EXPECT_EQ(a.deploy_dup_suppressed, b.deploy_dup_suppressed) << label;
  EXPECT_EQ(a.deploy_stale_acks, b.deploy_stale_acks) << label;
  EXPECT_EQ(a.deploy_unacked_at_end, b.deploy_unacked_at_end) << label;
  EXPECT_EQ(a.probe_retransmits, b.probe_retransmits) << label;
  EXPECT_EQ(a.probe_failovers, b.probe_failovers) << label;
  EXPECT_EQ(a.reconcile_exchanges, b.reconcile_exchanges) << label;
  EXPECT_EQ(a.reconcile_deploys, b.reconcile_deploys) << label;
  EXPECT_EQ(a.in_flight_at_end, b.in_flight_at_end) << label;
  EXPECT_EQ(a.in_flight_crossings_at_end, b.in_flight_crossings_at_end)
      << label;
}

/// The crossing conservation invariant (DESIGN.md §11): every crossing the
/// sources offered is delivered, dropped by a named cause, or still in
/// flight at the horizon — nothing vanishes.
void ExpectConservation(const NetStats& net, const char* label) {
  EXPECT_EQ(net.crossings,
            net.delivered_crossings + net.dropped_loss +
                net.dropped_partition + net.dropped_retired +
                net.in_flight_crossings_at_end)
      << label << ": crossings=" << net.crossings
      << " delivered=" << net.delivered_crossings
      << " loss=" << net.dropped_loss
      << " partition=" << net.dropped_partition
      << " retired=" << net.dropped_retired
      << " in_flight=" << net.in_flight_crossings_at_end;
}

// ------------------------------------------- zero-rate faults ≡ instant

/// `loss:0`, `reorder:0` and their composites with zero-delay bases are
/// observably fault-free: they must take the inline delivery path and
/// reproduce the instant run byte-identically for every protocol, serial
/// and sharded.
TEST(NetFaultEquivalenceTest, ZeroRateFaultConfigsMatchInstant) {
  const char* kSpecs[] = {"loss:0", "reorder:0", "latency:0+loss:0+reorder:0"};
  for (const ProtoCase& c : kAllProtocols) {
    SystemConfig config = BaseConfig(c.protocol, c.query, c.eps, c.rank_r);
    for (const std::size_t shards : {std::size_t{1}, std::size_t{3}}) {
      config.shards = shards;
      config.net = NetConfig{};  // instant
      auto instant = RunSystem(config);
      ASSERT_TRUE(instant.ok()) << c.label;
      for (const char* spec : kSpecs) {
        auto net = ParseNetSpec(spec);
        ASSERT_TRUE(net.ok()) << spec;
        ASSERT_FALSE(net->DelaysDelivery()) << spec;
        config.net = *net;
        auto run = RunSystem(config);
        ASSERT_TRUE(run.ok()) << c.label << " " << spec;
        ExpectSameRun(*instant, *run, c.label);
      }
    }
  }
}

// ------------------------------------------------ determinism under seed

/// The fault schedule is a pure function of (config, seed): a composite
/// loss+reorder+partition run replays every observable — including every
/// fault counter — exactly, serial and sharded alike.
TEST(NetFaultDeterminismTest, CompositeFaultsReplayExactly) {
  auto net = ParseNetSpec("latency:3:2+loss:0.08:3+reorder:2+partition:120,240");
  ASSERT_TRUE(net.ok());
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    SystemConfig config =
        BaseConfig(ProtocolKind::kFtNrp, QuerySpec::Range(400, 600), 0.2, 0);
    config.shards = shards;
    config.net = *net;
    auto first = RunSystem(config);
    auto second = RunSystem(config);
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(second.ok());
    ExpectSameRun(*first, *second, "fault-replay");
    ExpectSameNetStats(first->net, second->net, "fault-replay");
    // The faults actually engaged.
    EXPECT_GT(first->net.dropped_loss, 0u);
    EXPECT_GT(first->net.dropped_partition, 0u);
    ExpectConservation(first->net, "fault-replay");
  }
}

// ---------------------------------------------- serial ≡ sharded, faulty

/// Under a lossy + delayed composite the sharded engine must reproduce the
/// serial run for any shard count — fault draws happen in replay order on
/// the coordinator, so the schedule cannot depend on the partitioning.
TEST(NetFaultShardedTest, SerialMatchesShardedUnderFaults) {
  const char* kSpecs[] = {
      "latency:4+loss:0.05:3",
      "batch:15+loss:0.1",
      "latency:2:3+loss:0.05+reorder:2+partition:150,260",
  };
  for (const char* spec : kSpecs) {
    auto net = ParseNetSpec(spec);
    ASSERT_TRUE(net.ok()) << spec;
    SystemConfig config =
        BaseConfig(ProtocolKind::kFtNrp, QuerySpec::Range(400, 600), 0.2, 0);
    config.net = *net;
    config.shards = 1;
    auto serial = RunSystem(config);
    ASSERT_TRUE(serial.ok()) << spec;
    for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
      config.shards = shards;
      auto sharded = RunSystem(config);
      ASSERT_TRUE(sharded.ok()) << spec;
      ExpectSameRun(*serial, *sharded, spec);
      ExpectSameNetStats(serial->net, sharded->net, spec);
    }
    ExpectConservation(serial->net, spec);
  }
}

// ------------------------------- every protocol terminates under faults

/// Sustained burst loss with retransmitting deploys: all six protocols
/// complete the run, keep judging, and satisfy the conservation invariant.
TEST(NetFaultProtocolTest, AllProtocolsTerminateUnderBurstLoss) {
  auto net = ParseNetSpec("latency:2+loss:0.1:3+rto:8");
  ASSERT_TRUE(net.ok());
  for (const ProtoCase& c : kAllProtocols) {
    SystemConfig config = BaseConfig(c.protocol, c.query, c.eps, c.rank_r);
    config.net = *net;
    auto run = RunSystem(config);
    ASSERT_TRUE(run.ok()) << c.label;
    EXPECT_GT(run->oracle_checks, 0u) << c.label;
    EXPECT_LE(run->oracle_violations, run->oracle_checks) << c.label;
    ExpectConservation(run->net, c.label);
  }
}

/// Crossings lost to retirement under loss: a query retiring with updates
/// in flight closes its books; the invariant still balances with both the
/// retired and the loss buckets populated.
TEST(NetFaultLifecycleTest, RetirementAndLossShareTheInvariant) {
  MultiQueryConfig config;
  RandomWalkConfig walk;
  walk.num_streams = 120;
  walk.seed = 31;
  config.source = SourceSpec::Walk(walk);
  config.duration = 600;
  config.seed = 31;
  auto net = ParseNetSpec("latency:25+loss:0.15");
  ASSERT_TRUE(net.ok());
  config.net = *net;

  QueryDeployment young;
  young.name = "young";
  young.query = QuerySpec::Range(300, 700);
  young.protocol = ProtocolKind::kZtNrp;
  young.start = 0;
  young.end = 200;
  QueryDeployment old;
  old.name = "survivor";
  old.query = QuerySpec::Range(350, 650);
  old.protocol = ProtocolKind::kZtNrp;
  config.queries = {young, old};

  auto result = RunMultiQuerySystem(config);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->net.dropped_retired, 0u);
  EXPECT_GT(result->net.dropped_loss, 0u);
  ExpectConservation(result->net, "retire+loss");
}

// --------------------------------------- deploy state machine, scripted

struct DeployArrival {
  std::size_t slot;
  StreamId id;
  FilterConstraint constraint;
  SimTime at;
};

struct FaultRig {
  Scheduler scheduler;
  std::unique_ptr<NetworkModel> net;
  std::vector<DeployArrival> deploys;

  explicit FaultRig(const NetConfig& config, std::uint64_t seed = 7) {
    net = MakeNetworkModel(config, seed);
    net->Bind(
        &scheduler,
        [](StreamId, const NetworkModel::Payload*, std::size_t, SimTime) {},
        [this](std::size_t slot, StreamId id, const FilterConstraint& c,
               SimTime at) {
          deploys.push_back({slot, id, c, at});
        });
  }
};

/// Scripted timeout + duplicate + lost-ack scenario: deploy at t=0 under
/// latency:2 with the link down in [1,3) and rto:5. The install arrives at
/// t=2 and is applied, but its ack evaluates against the down window and is
/// lost; the timer fires at t=5, the retransmit arrives at t=7 as a
/// duplicate (suppressed, re-acked), and the ack lands at t=9.
TEST(NetDeployStateMachineTest, TimeoutRetransmitsAndSuppressesDuplicate) {
  auto net = ParseNetSpec("latency:2+partition:1,3+rto:5+norecon");
  ASSERT_TRUE(net.ok());
  FaultRig rig(*net);

  rig.net->SendDeploy(/*slot=*/4, /*id=*/9,
                      FilterConstraint::Range(Interval(400, 600)), 0);
  rig.scheduler.RunUntil(20);
  rig.net->Finalize(20);

  ASSERT_EQ(rig.deploys.size(), 1u);  // the duplicate was suppressed
  EXPECT_EQ(rig.deploys[0].slot, 4u);
  EXPECT_EQ(rig.deploys[0].id, 9u);
  EXPECT_DOUBLE_EQ(rig.deploys[0].at, 2.0);

  const NetStats& stats = rig.net->stats();
  EXPECT_EQ(stats.deploy_messages, 1u);
  EXPECT_EQ(stats.deploy_attempts, 2u);
  EXPECT_EQ(stats.deploy_retransmits, 1u);
  EXPECT_EQ(stats.deploy_dropped, 1u);  // the lost ack
  EXPECT_EQ(stats.deploy_dup_suppressed, 1u);
  EXPECT_EQ(stats.deploy_acks, 1u);
  EXPECT_EQ(stats.deploy_stale_acks, 0u);
  EXPECT_EQ(stats.deploy_unacked_at_end, 0u);
  EXPECT_EQ(stats.in_flight_at_end, 0u);
}

/// Supersession: a second install on the same (query, stream) channel
/// bumps the sequence number before the first ack returns; the stale ack
/// is ignored and only the newest install's ack settles the channel.
TEST(NetDeployStateMachineTest, SupersededDeployIgnoresStaleAck) {
  // The far-away partition window never opens in this script; it only
  // makes the config faulty so the pipeline (and its ack machinery) runs.
  auto net = ParseNetSpec("latency:2+partition:900,901+rto:10+norecon");
  ASSERT_TRUE(net.ok());
  FaultRig rig(*net);

  const FilterConstraint a = FilterConstraint::Range(Interval(400, 600));
  const FilterConstraint b = FilterConstraint::Range(Interval(450, 550));
  rig.net->SendDeploy(/*slot=*/1, /*id=*/3, a, 0);
  rig.scheduler.RunUntil(1);
  rig.net->SendDeploy(/*slot=*/1, /*id=*/3, b, 1);
  rig.scheduler.RunUntil(30);
  rig.net->Finalize(30);

  ASSERT_EQ(rig.deploys.size(), 2u);
  EXPECT_TRUE(rig.deploys[0].constraint == a);
  EXPECT_TRUE(rig.deploys[1].constraint == b);
  EXPECT_DOUBLE_EQ(rig.deploys[0].at, 2.0);
  EXPECT_DOUBLE_EQ(rig.deploys[1].at, 3.0);

  const NetStats& stats = rig.net->stats();
  EXPECT_EQ(stats.deploy_attempts, 2u);
  EXPECT_EQ(stats.deploy_retransmits, 0u);
  EXPECT_EQ(stats.deploy_acks, 1u);        // only B's ack counts
  EXPECT_EQ(stats.deploy_stale_acks, 1u);  // A's ack arrived superseded
  EXPECT_EQ(stats.deploy_unacked_at_end, 0u);
}

/// Backoff caps: with rto:5:20 inside a never-healing partition the
/// retransmit schedule is 5, 15, 35, 55, 75, 95 — seven attempts by t=100.
/// Uncapped doubling (5, 15, 35, 75, 155) would only reach four.
TEST(NetDeployStateMachineTest, BackoffIsCappedAtRtoMax) {
  auto net = ParseNetSpec("partition:0,1000+rto:5:20+norecon");
  ASSERT_TRUE(net.ok());
  FaultRig rig(*net);

  rig.net->SendDeploy(/*slot=*/0, /*id=*/0,
                      FilterConstraint::Range(Interval(100, 200)), 0);
  rig.scheduler.RunUntil(100);
  rig.net->Finalize(100);

  const NetStats& stats = rig.net->stats();
  EXPECT_EQ(stats.deploy_attempts, 7u);
  EXPECT_EQ(stats.deploy_retransmits, 6u);
  EXPECT_EQ(stats.deploy_dropped, 7u);  // every copy hit the partition
  EXPECT_EQ(stats.deploy_acks, 0u);
  EXPECT_EQ(stats.deploy_unacked_at_end, 1u);
  EXPECT_EQ(rig.deploys.size(), 0u);
  EXPECT_EQ(stats.deploy_messages, 0u);
}

// ----------------------------------------------------- probe resilience

/// A partitioned link fails the probe immediately; a loss:1 link exhausts
/// the bounded retransmissions. Both report failover so the server serves
/// its cached value.
TEST(NetProbeTest, PartitionAndTotalLossFailOver) {
  auto down = ParseNetSpec("partition:0,1000+norecon");
  ASSERT_TRUE(down.ok());
  FaultRig part(*down);
  EXPECT_FALSE(part.net->ControlRpc(/*id=*/3, /*now=*/50));
  EXPECT_EQ(part.net->stats().control_rpcs, 1u);
  EXPECT_EQ(part.net->stats().probe_failovers, 1u);
  EXPECT_EQ(part.net->stats().probe_retransmits, 0u);

  auto lossy = ParseNetSpec("loss:1");
  ASSERT_TRUE(lossy.ok());
  FaultRig total(*lossy);
  EXPECT_FALSE(total.net->ControlRpc(/*id=*/3, /*now=*/50));
  EXPECT_EQ(total.net->stats().control_rpcs, 1u);
  EXPECT_EQ(total.net->stats().probe_failovers, 1u);
  EXPECT_EQ(total.net->stats().probe_retransmits, 7u);  // 8 attempts

  // A clean link always succeeds and counts no retransmissions.
  auto clean = ParseNetSpec("latency:2+partition:900,901");
  ASSERT_TRUE(clean.ok());
  FaultRig ok(*clean);
  EXPECT_TRUE(ok.net->ControlRpc(/*id=*/3, /*now=*/50));
  EXPECT_EQ(ok.net->stats().probe_failovers, 0u);
}

// -------------------------------------------------- bounded reordering

/// reorder:k holds each surviving message behind at most k later
/// survivors: arrivals are a permutation with displacement <= k, and
/// whatever is still held at the horizon is counted in flight.
TEST(NetReorderTest, DisplacementIsBoundedByK) {
  auto net = ParseNetSpec("reorder:2");
  ASSERT_TRUE(net.ok());

  Scheduler scheduler;
  auto model = MakeNetworkModel(*net, /*seed=*/11);
  std::vector<std::uint64_t> arrived_seq;
  model->Bind(
      &scheduler,
      [&](StreamId id, const NetworkModel::Payload* payloads,
          std::size_t count, SimTime) {
        ASSERT_EQ(id, 5u);
        ASSERT_EQ(count, 1u);
        arrived_seq.push_back(payloads[0].seq);
      },
      [](std::size_t, StreamId, const FilterConstraint&, SimTime) {});

  const std::vector<std::size_t> slots = {0};
  const int kSends = 50;
  for (int i = 0; i < kSends; ++i) {
    scheduler.RunUntil(static_cast<SimTime>(i));
    model->SendUpdate(/*id=*/5, static_cast<Value>(i), slots,
                      scheduler.now());
  }
  scheduler.RunUntil(1000);
  model->Finalize(1000);

  const NetStats& stats = model->stats();
  EXPECT_EQ(arrived_seq.size() + stats.in_flight_at_end,
            static_cast<std::size_t>(kSends));
  EXPECT_EQ(stats.in_flight_crossings_at_end, stats.in_flight_at_end);
  // Each arrival was overtaken by at most k=2 later sends.
  std::uint64_t inversions = 0;
  for (std::size_t i = 0; i < arrived_seq.size(); ++i) {
    std::uint64_t overtakers = 0;
    for (std::size_t j = 0; j < i; ++j) {
      if (arrived_seq[j] > arrived_seq[i]) ++overtakers;
    }
    inversions += overtakers;
    EXPECT_LE(overtakers, 2u) << "arrival " << i;
  }
  // The stage actually reorders under this seed.
  EXPECT_GT(inversions, 0u);
  // No duplicates: seqs are distinct.
  std::vector<std::uint64_t> sorted = arrived_seq;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end());
}

/// End to end, reordering without loss changes delivery order but loses
/// nothing: stale payloads are suppressed at the server (counted), and the
/// conservation invariant holds.
TEST(NetReorderTest, EndToEndSuppressionIsAccounted) {
  auto net = ParseNetSpec("latency:1+reorder:3");
  ASSERT_TRUE(net.ok());
  SystemConfig config =
      BaseConfig(ProtocolKind::kZtNrp, QuerySpec::Range(400, 600), 0, 0);
  config.net = *net;
  auto run = RunSystem(config);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->net.dropped_loss, 0u);
  EXPECT_GT(run->net.suppressed_stale, 0u);
  ExpectConservation(run->net, "reorder-e2e");
}

// ------------------------------------------- reconnect reconciliation

/// Partition up-edges trigger the summary-vector exchange: with
/// reconciliation every source reports once per up-edge; `norecon`
/// suppresses the exchange entirely. Both runs terminate.
TEST(NetReconcileTest, UpEdgeExchangesRunUnlessDisabled) {
  SystemConfig config =
      BaseConfig(ProtocolKind::kZtNrp, QuerySpec::Range(400, 600), 0, 0);
  auto with = ParseNetSpec("latency:2+partition:150,300");
  ASSERT_TRUE(with.ok());
  config.net = *with;
  auto reconciled = RunSystem(config);
  ASSERT_TRUE(reconciled.ok());
  // One up-edge (t=300) x 200 streams.
  EXPECT_EQ(reconciled->net.reconcile_exchanges, 200u);
  ExpectConservation(reconciled->net, "reconcile");

  auto without = ParseNetSpec("latency:2+partition:150,300+norecon");
  ASSERT_TRUE(without.ok());
  config.net = *without;
  auto bare = RunSystem(config);
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->net.reconcile_exchanges, 0u);
  EXPECT_EQ(bare->net.reconcile_deploys, 0u);
  ExpectConservation(bare->net, "norecon");
}

// ------------------------------------------------ staleness compensation

TEST(NetCompensationTest, ShrinksFiniteBoundsAndCollapsesCrossedBands) {
  const FilterConstraint range =
      FilterConstraint::Range(Interval(400, 600));
  const FilterConstraint shrunk = CompensateConstraint(range, 10);
  ASSERT_TRUE(shrunk.has_filter());
  EXPECT_DOUBLE_EQ(shrunk.interval().lo(), 410);
  EXPECT_DOUBLE_EQ(shrunk.interval().hi(), 590);

  // Margins that cross collapse to the original midpoint.
  const FilterConstraint collapsed = CompensateConstraint(range, 150);
  ASSERT_TRUE(collapsed.has_filter());
  EXPECT_DOUBLE_EQ(collapsed.interval().lo(), 500);
  EXPECT_DOUBLE_EQ(collapsed.interval().hi(), 500);

  // Infinite bounds stay put; only finite ones move.
  const FilterConstraint half =
      FilterConstraint::Range(Interval(-kInf, 600));
  const FilterConstraint half_shrunk = CompensateConstraint(half, 25);
  EXPECT_DOUBLE_EQ(half_shrunk.interval().lo(), -kInf);
  EXPECT_DOUBLE_EQ(half_shrunk.interval().hi(), 575);

  // Pass-through forms are untouched.
  EXPECT_TRUE(CompensateConstraint(FilterConstraint::NoFilter(), 10) ==
              FilterConstraint::NoFilter());
  EXPECT_TRUE(CompensateConstraint(FilterConstraint::FalsePositive(), 10) ==
              FilterConstraint::FalsePositive());
  EXPECT_TRUE(CompensateConstraint(FilterConstraint::FalseNegative(), 10) ==
              FilterConstraint::FalseNegative());
  // Zero margin is the identity.
  EXPECT_TRUE(CompensateConstraint(range, 0) == range);
}

/// comp composes with delay in the engine: the run completes and the
/// deterministic replay contract still holds.
TEST(NetCompensationTest, CompensatedRunsAreDeterministic) {
  auto net = ParseNetSpec("latency:5:2+comp:10");
  ASSERT_TRUE(net.ok());
  EXPECT_TRUE(net->DelaysDelivery());
  SystemConfig config =
      BaseConfig(ProtocolKind::kZtNrp, QuerySpec::Range(400, 600), 0, 0);
  config.net = *net;
  auto first = RunSystem(config);
  auto second = RunSystem(config);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ExpectSameRun(*first, *second, "comp-replay");
}

// ------------------------------------------------------- adaptive RTO

TEST(RttEstimatorTest, FollowsRfc6298) {
  RttEstimator est;
  EXPECT_FALSE(est.has_sample());

  // First sample: srtt = R, rttvar = R/2, RTO = 3R.
  est.AddSample(10);
  ASSERT_TRUE(est.has_sample());
  EXPECT_DOUBLE_EQ(est.srtt(), 10);
  EXPECT_DOUBLE_EQ(est.rttvar(), 5);
  EXPECT_DOUBLE_EQ(est.Rto(1.0, 1000), 30);

  // Steady identical samples: srtt stays, rttvar decays by 3/4 — the
  // timeout converges down toward srtt.
  est.AddSample(10);
  EXPECT_DOUBLE_EQ(est.srtt(), 10);
  EXPECT_DOUBLE_EQ(est.rttvar(), 3.75);
  EXPECT_DOUBLE_EQ(est.Rto(1.0, 1000), 25);

  // A deviating sample moves both estimates with gains 1/8 and 1/4.
  est.AddSample(18);
  EXPECT_DOUBLE_EQ(est.srtt(), 11);  // 0.875*10 + 0.125*18
  EXPECT_DOUBLE_EQ(est.rttvar(), 0.75 * 3.75 + 0.25 * 8);

  // Clamps apply at both ends.
  RttEstimator tiny;
  tiny.AddSample(0);
  EXPECT_DOUBLE_EQ(tiny.Rto(1.0, 1000), 1.0);
  RttEstimator huge;
  huge.AddSample(500);
  EXPECT_DOUBLE_EQ(huge.Rto(1.0, 100), 100);
}

TEST(NetAdaptiveRtoTest, ParsesAdaptiveAndFixedForms) {
  // Adaptive is the default: no rto stage means rto_adaptive on.
  auto plain = ParseNetSpec("loss:0.1");
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(plain->rto_adaptive);
  EXPECT_DOUBLE_EQ(plain->rto, 0);

  // Explicit adaptive with no cap canonicalizes away (it IS the default).
  auto adaptive = ParseNetSpec("latency:5+rto:adaptive");
  ASSERT_TRUE(adaptive.ok());
  EXPECT_TRUE(adaptive->rto_adaptive);
  EXPECT_EQ(adaptive->ToString(), "latency:5");

  // An explicit cap keeps a stage and round-trips.
  auto capped = ParseNetSpec("latency:5+rto:adaptive:160");
  ASSERT_TRUE(capped.ok());
  EXPECT_TRUE(capped->rto_adaptive);
  EXPECT_DOUBLE_EQ(capped->rto_max, 160);
  EXPECT_EQ(capped->ToString(), "latency:5+rto:adaptive:160");
  auto again = ParseNetSpec(capped->ToString());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->ToString(), capped->ToString());

  // rto:fixed pins the legacy auto-initial schedule and round-trips.
  auto fixed = ParseNetSpec("latency:5+rto:fixed");
  ASSERT_TRUE(fixed.ok());
  EXPECT_FALSE(fixed->rto_adaptive);
  EXPECT_DOUBLE_EQ(fixed->rto, 0);
  EXPECT_EQ(fixed->ToString(), "latency:5+rto:fixed");
  auto fixed_cap = ParseNetSpec("rto:fixed:40");
  ASSERT_TRUE(fixed_cap.ok());
  EXPECT_FALSE(fixed_cap->rto_adaptive);
  EXPECT_DOUBLE_EQ(fixed_cap->rto_max, 40);
  EXPECT_EQ(fixed_cap->ToString(), "rto:fixed:40");

  // A numeric timeout always wins over the adaptive flag.
  auto numeric = ParseNetSpec("rto:4:32");
  ASSERT_TRUE(numeric.ok());
  EXPECT_DOUBLE_EQ(numeric->rto, 4);

  // Malformed forms are rejected.
  EXPECT_FALSE(ParseNetSpec("rto:adaptive:x").ok());
  EXPECT_FALSE(ParseNetSpec("rto:bogus").ok());
  EXPECT_FALSE(ParseNetSpec("rto:adaptive:1:2").ok());
}

/// Warm link, then an outage: five clean deploy/ack exchanges (RTT = 2x
/// latency = 10 each) train the link's estimator, so the retransmit timer
/// for a copy lost at t=100 fires at the adaptive base
/// srtt + 4*rttvar = 10 + 4*(5 * 0.75^4) — earlier than the conservative
/// auto initial 4*latency = 20 that `rto:fixed` keeps.
TEST(NetAdaptiveRtoTest, TrainedLinkRetransmitsAtAdaptiveBase) {
  const double kAdaptiveBase = 10 + 4 * (5 * 0.75 * 0.75 * 0.75 * 0.75);
  struct Variant {
    const char* spec;
    double base;  // backoff base in effect at the t=100 timeout
  };
  const Variant kVariants[] = {
      {"latency:5+partition:100,103+norecon", kAdaptiveBase},
      {"latency:5+partition:100,103+norecon+rto:fixed", 20.0},
  };
  for (const Variant& v : kVariants) {
    auto net = ParseNetSpec(v.spec);
    ASSERT_TRUE(net.ok()) << v.spec;
    FaultRig rig(*net);
    const FilterConstraint c = FilterConstraint::Range(Interval(400, 600));
    // Five priming exchanges on link id=3, one per channel (the estimator
    // is per link, shared across query slots).
    for (std::size_t k = 0; k < 5; ++k) {
      rig.scheduler.RunUntil(static_cast<SimTime>(20 * k));
      rig.net->SendDeploy(/*slot=*/k, /*id=*/3, c, rig.scheduler.now());
    }
    rig.scheduler.RunUntil(100);
    // This copy hits the down window [100,103) and is dropped; the
    // retransmit goes out one backoff base later and arrives after the
    // one-way latency.
    rig.net->SendDeploy(/*slot=*/9, /*id=*/3, c, 100);
    rig.scheduler.RunUntil(200);
    rig.net->Finalize(200);

    ASSERT_EQ(rig.deploys.size(), 6u) << v.spec;
    EXPECT_DOUBLE_EQ(rig.deploys.back().at, 100 + v.base + 5) << v.spec;
    EXPECT_EQ(rig.net->stats().deploy_retransmits, 1u) << v.spec;
    EXPECT_EQ(rig.net->stats().deploy_unacked_at_end, 0u) << v.spec;
  }
}

/// Karn's rule: an exchange that needed a retransmit yields no RTT sample
/// (its ack is ambiguous), so a later timeout on the same link still uses
/// the conservative auto initial base, not a bogus estimate.
TEST(NetAdaptiveRtoTest, RetransmittedExchangesAreNotSampled) {
  auto net = ParseNetSpec("latency:5+partition:0,8,40,48+norecon");
  ASSERT_TRUE(net.ok());
  FaultRig rig(*net);
  const FilterConstraint c = FilterConstraint::Range(Interval(400, 600));

  // First install: the t=0 copy hits [0,8) and is dropped; the timeout
  // fires at the auto initial 4*latency = 20, the retransmit arrives at
  // 25 and its ack settles the channel — but the exchange was ambiguous,
  // so no sample is recorded.
  rig.net->SendDeploy(/*slot=*/0, /*id=*/7, c, 0);
  rig.scheduler.RunUntil(40);
  // Second install: the t=40 copy hits [40,48). If the first exchange had
  // (wrongly) been sampled the timer base would differ from 20; unsampled,
  // the retransmit again goes out exactly 20 later and arrives at 65.
  rig.net->SendDeploy(/*slot=*/1, /*id=*/7, c, 40);
  rig.scheduler.RunUntil(200);
  rig.net->Finalize(200);

  ASSERT_EQ(rig.deploys.size(), 2u);
  EXPECT_DOUBLE_EQ(rig.deploys[0].at, 25.0);
  EXPECT_DOUBLE_EQ(rig.deploys[1].at, 65.0);
  EXPECT_EQ(rig.net->stats().deploy_retransmits, 2u);
}

/// Instant-base configs: a zero round trip clamps the adaptive base to
/// exactly the legacy auto initial max(1, 0) = 1, so adaptive and fixed
/// schedules coincide and whole runs stay byte-identical.
TEST(NetAdaptiveRtoTest, InstantBaseAdaptiveMatchesFixedExactly) {
  auto net = ParseNetSpec("loss:0.12:3");
  ASSERT_TRUE(net.ok());
  SystemConfig config =
      BaseConfig(ProtocolKind::kFtNrp, QuerySpec::Range(400, 600), 0.2, 0);
  config.net = *net;
  auto adaptive = RunSystem(config);
  ASSERT_TRUE(adaptive.ok());
  config.net.rto_adaptive = false;
  auto fixed = RunSystem(config);
  ASSERT_TRUE(fixed.ok());
  ExpectSameRun(*adaptive, *fixed, "instant-adaptive");
  ExpectSameNetStats(adaptive->net, fixed->net, "instant-adaptive");
  EXPECT_GT(adaptive->net.deploy_retransmits, 0u);
}

/// Adaptive timers live on the coordinator's replayed-event order, so the
/// serial and sharded engines agree under a delayed lossy composite with
/// retransmissions actually happening, and runs replay exactly.
TEST(NetAdaptiveRtoTest, SerialMatchesShardedWithAdaptiveRto) {
  auto net = ParseNetSpec("latency:4+loss:0.1:2");
  ASSERT_TRUE(net.ok());
  ASSERT_TRUE(net->rto_adaptive);
  SystemConfig config =
      BaseConfig(ProtocolKind::kFtNrp, QuerySpec::Range(400, 600), 0.2, 0);
  config.net = *net;
  config.shards = 1;
  auto serial = RunSystem(config);
  ASSERT_TRUE(serial.ok());
  EXPECT_GT(serial->net.deploy_retransmits, 0u);
  auto replay = RunSystem(config);
  ASSERT_TRUE(replay.ok());
  ExpectSameRun(*serial, *replay, "adaptive-replay");
  ExpectSameNetStats(serial->net, replay->net, "adaptive-replay");
  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    config.shards = shards;
    auto sharded = RunSystem(config);
    ASSERT_TRUE(sharded.ok());
    ExpectSameRun(*serial, *sharded, "adaptive-sharded");
    ExpectSameNetStats(serial->net, sharded->net, "adaptive-sharded");
  }
  ExpectConservation(serial->net, "adaptive");
}

}  // namespace
}  // namespace asf
