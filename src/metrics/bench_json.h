#ifndef ASF_METRICS_BENCH_JSON_H_
#define ASF_METRICS_BENCH_JSON_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

/// \file
/// Machine-readable benchmark output. Every perf harness (bench/micro_*,
/// bench/fig*, tools/asf_sweep --bench-json) writes the same flat schema
///
///   {"bench": "<name>", "metrics": {"<key>": <number>, ...}}
///
/// so BENCH_*.json files are diffable across commits — the perf
/// trajectory of the project lives in these files.

namespace asf {

/// Writes `metrics` to `path` in the schema above. Values are printed
/// with %.17g (round-trip exact for doubles).
Status WriteBenchJson(
    const std::string& path, const std::string& bench,
    const std::vector<std::pair<std::string, double>>& metrics);

/// Same, with a string-valued "provenance" object (see
/// metrics/provenance.h) emitted BEFORE "metrics":
///
///   {"bench": "...", "provenance": {"git_sha": "...", ...},
///    "metrics": {...}}
///
/// The ordering matters: tools/bench_check scans flat numbers from the
/// "metrics" key onward, so provenance strings must precede it.
Status WriteBenchJson(
    const std::string& path, const std::string& bench,
    const std::vector<std::pair<std::string, double>>& metrics,
    const std::vector<std::pair<std::string, std::string>>& provenance);

}  // namespace asf

#endif  // ASF_METRICS_BENCH_JSON_H_
