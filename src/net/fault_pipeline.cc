#include "net/fault_pipeline.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace asf {

namespace {

/// Bounded probe retry: after this many lost request/response exchanges
/// within one zero-time RPC the server fails over to its cached value.
constexpr std::uint32_t kMaxProbeAttempts = 8;

}  // namespace

FaultPipeline::FaultPipeline(const NetConfig& config,
                             std::unique_ptr<NetworkModel> base,
                             std::uint64_t seed)
    : config_(config),
      base_(std::move(base)),
      rng_(seed),
      rto_initial_(config.RtoInitial()),
      rto_cap_(config.RtoMax()),
      rto_adaptive_(config.rto == 0 && config.rto_adaptive) {
  ASF_CHECK(base_ != nullptr);
}

void FaultPipeline::OnBind() {
  base_->set_update_egress(
      [this](StreamId id, std::vector<Payload>& payloads, SimTime at) {
        return OnUpdateEgress(id, payloads, at);
      });
  base_->Bind(scheduler_, update_sink_,
              [](std::size_t, StreamId, const FilterConstraint&, SimTime) {
                ASF_CHECK_MSG(false,
                              "FaultPipeline owns the deploy control plane");
              });
}

bool FaultPipeline::LinkUp(SimTime t) const {
  std::size_t edges = 0;
  while (edges < config_.partition.size() && config_.partition[edges] <= t) {
    ++edges;
  }
  return (edges % 2) == 0;
}

bool FaultPipeline::LossDraw(std::vector<GeChain>* chains, StreamId id) {
  if (config_.loss <= 0) return false;
  if (config_.loss_burst <= 1.0) return rng_.Bernoulli(config_.loss);
  if (id >= chains->size()) chains->resize(id + 1);
  GeChain& ch = (*chains)[id];
  if (!ch.init) {
    // Enter at the stationary distribution: P(bad) == overall loss rate.
    ch.init = true;
    ch.bad = rng_.Bernoulli(config_.loss);
  }
  const bool drop = ch.bad;
  if (ch.bad) {
    if (rng_.Bernoulli(1.0 / config_.loss_burst)) ch.bad = false;
  } else if (rng_.Bernoulli(config_.loss /
                            (config_.loss_burst * (1.0 - config_.loss)))) {
    ch.bad = true;
  }
  return drop;
}

SimTime FaultPipeline::CtlDelay() {
  if (config_.kind != NetConfig::Kind::kFixedLatency) return 0;
  SimTime d = config_.latency;
  if (config_.jitter > 0) d += rng_.Uniform(0, config_.jitter);
  return d;
}

void FaultPipeline::SendUpdate(StreamId id, Value v,
                               const std::vector<std::size_t>& slots,
                               SimTime now) {
  // The data plane rides the base model untouched (batching, queueing and
  // latency behave exactly as configured); faults apply at its egress.
  base_->SendUpdate(id, v, slots, now);
}

NetworkModel::EgressAction FaultPipeline::OnUpdateEgress(
    StreamId id, std::vector<Payload>& payloads, SimTime at) {
  std::uint64_t crossings = 0;
  for (const Payload& p : payloads) crossings += p.crossings;
  NetStats& s = stats();
  if (!LinkUp(at)) {
    s.dropped_partition += crossings;
    ASF_TRACE_EVENT(obs_tracer_, obs_ring_, obs::TraceEventType::kWireDrop,
                    at, id, 0, crossings);
    return EgressAction::kConsumed;
  }
  if (LossDraw(&up_, id)) {
    s.dropped_loss += crossings;
    ASF_TRACE_EVENT(obs_tracer_, obs_ring_, obs::TraceEventType::kWireDrop,
                    at, id, 0, crossings);
    return EgressAction::kConsumed;
  }
  if (config_.reorder == 0) return EgressAction::kDeliver;

  // Bounded out-of-order delivery: stamp the link's wire sequence number
  // (the server suppresses payloads an overtaker already obsoleted) and
  // stash the message under release key seq + hold. Survivor seqnos are
  // consecutive per link, so a message releases exactly when the link's
  // latest survivor reaches its key — a later message j overtakes i only
  // if j + hold_j < i + hold_i, which caps the displacement at k.
  if (id >= msg_seq_.size()) msg_seq_.resize(id + 1, 0);
  const std::uint64_t seq = ++msg_seq_[id];
  for (Payload& p : payloads) p.seq = seq;
  const auto hold =
      static_cast<std::uint32_t>(rng_.UniformInt(0, config_.reorder));
  if (id >= held_.size()) held_.resize(id + 1);
  Held h;
  h.payloads = std::move(payloads);
  h.crossings = crossings;
  h.seq = seq;
  h.key = seq + hold;
  ++stash_msgs_;
  stash_crossings_ += crossings;
  for (const Payload& p : h.payloads) {
    if (p.slot >= stash_in_flight_.size()) {
      stash_in_flight_.resize(p.slot + 1, 0);
    }
    ++stash_in_flight_[p.slot];
  }
  auto& q = held_[id];
  const auto pos = std::upper_bound(
      q.begin(), q.end(), h, [](const Held& a, const Held& b) {
        return a.key != b.key ? a.key < b.key : a.seq < b.seq;
      });
  q.insert(pos, std::move(h));
  while (!q.empty() && q.front().key <= seq) {
    Held ripe = std::move(q.front());
    q.erase(q.begin());
    DeliverStashed(id, ripe, at);
  }
  return EgressAction::kConsumed;
}

void FaultPipeline::DeliverStashed(StreamId id, Held& held, SimTime at) {
  --stash_msgs_;
  stash_crossings_ -= held.crossings;
  for (const Payload& p : held.payloads) --stash_in_flight_[p.slot];
  base_->DeliverHeldUpdate(id, held.payloads, at);
}

void FaultPipeline::SendDeploy(std::size_t slot, StreamId id,
                               const FilterConstraint& constraint,
                               SimTime now) {
  Channel& ch = channels_[ChannelKey(slot, id)];
  ch.slot = slot;
  ch.id = id;
  if (ch.timer_armed) {
    scheduler_->Cancel(ch.timer);
    ch.timer_armed = false;
  }
  // Last-writer-wins supersession: a fresh install restarts the channel;
  // acks for the superseded seq are ignored and the source applies only
  // monotonically newer installs.
  ++ch.seq;
  ch.constraint = constraint;
  ch.pending = true;
  ch.attempt = 0;
  ch.retransmitted = false;
  Transmit(ch, now, /*reliable=*/false);
}

void FaultPipeline::Transmit(Channel& ch, SimTime now, bool reliable) {
  NetStats& s = stats();
  ++s.deploy_attempts;
  const bool wire_ok = reliable || (LinkUp(now) && !LossDraw(&down_, ch.id));
  if (!wire_ok) {
    ++s.deploy_dropped;
  } else {
    const SimTime at = now + CtlDelay();
    ++pending_ctl_wire_;
    const std::size_t slot = ch.slot;
    const StreamId id = ch.id;
    const std::uint64_t seq = ch.seq;
    const FilterConstraint constraint = ch.constraint;
    const bool want_ack = !reliable;
    scheduler_->ScheduleAt(at,
                           [this, slot, id, seq, constraint, at, want_ack] {
                             --pending_ctl_wire_;
                             OnDeployArrival(slot, id, seq, constraint, at,
                                             want_ack);
                           });
  }
  if (reliable) {
    // The reconnect handshake is transactional: the replayed install is
    // considered acknowledged as part of the summary exchange.
    ch.pending = false;
    ch.attempt = 0;
  } else {
    ch.sent_at = now;
    ArmTimer(ch, now);
  }
}

void FaultPipeline::ArmTimer(Channel& ch, SimTime now) {
  // Adaptive mode: once the link has a Karn-filtered RTT sample, the
  // backoff base is its RFC 6298 estimate clamp(srtt + 4·rttvar, 1, cap)
  // instead of the conservative configured initial. The floor of 1 time
  // unit keeps instant-base configs on exactly the legacy schedule.
  double base = rto_initial_;
  if (rto_adaptive_ && ch.id < rtt_.size() && rtt_[ch.id].has_sample()) {
    base = rtt_[ch.id].Rto(1.0, rto_cap_);
  }
  const double backoff = std::min(
      rto_cap_, std::ldexp(base, std::min<std::uint32_t>(ch.attempt, 60)));
  ++ch.attempt;
  const std::size_t slot = ch.slot;
  const StreamId id = ch.id;
  ch.timer = scheduler_->ScheduleAt(
      now + backoff, [this, slot, id] { OnDeployTimeout(slot, id); });
  ch.timer_armed = true;
}

void FaultPipeline::OnDeployArrival(std::size_t slot, StreamId id,
                                    std::uint64_t seq,
                                    const FilterConstraint& constraint,
                                    SimTime at, bool want_ack) {
  Channel& ch = channels_[ChannelKey(slot, id)];
  NetStats& s = stats();
  if (seq > ch.applied_seq) {
    ch.applied_seq = seq;
    ++s.deploy_messages;
    deploy_sink_(slot, id, constraint, at);
  } else {
    ++s.deploy_dup_suppressed;
  }
  if (!want_ack) return;
  // The ack rides the uplink and draws the same fault processes. It is
  // sent even when the install was a suppressed duplicate (or the query
  // has retired): the server must stop retransmitting either way.
  if (!LinkUp(at) || LossDraw(&up_, id)) {
    ++s.deploy_dropped;
    return;
  }
  const SimTime ack_at = at + CtlDelay();
  ++pending_ctl_wire_;
  scheduler_->ScheduleAt(ack_at, [this, slot, id, seq] {
    --pending_ctl_wire_;
    OnDeployAck(slot, id, seq);
  });
}

void FaultPipeline::OnDeployAck(std::size_t slot, StreamId id,
                                std::uint64_t seq) {
  Channel& ch = channels_[ChannelKey(slot, id)];
  NetStats& s = stats();
  if (ch.pending && seq == ch.seq) {
    // Karn's rule: only an exchange whose current seq was never
    // retransmitted yields an unambiguous round trip.
    if (rto_adaptive_ && !ch.retransmitted) {
      if (ch.id >= rtt_.size()) rtt_.resize(ch.id + 1);
      rtt_[ch.id].AddSample(scheduler_->now() - ch.sent_at);
      if (obs_sink_ != nullptr) {
        obs_sink_->rto->Add(rtt_[ch.id].Rto(1.0, rto_cap_));
      }
    }
    ch.pending = false;
    ++s.deploy_acks;
    if (ch.timer_armed) {
      scheduler_->Cancel(ch.timer);
      ch.timer_armed = false;
    }
  } else {
    ++s.deploy_stale_acks;
  }
}

void FaultPipeline::OnDeployTimeout(std::size_t slot, StreamId id) {
  Channel& ch = channels_[ChannelKey(slot, id)];
  ch.timer_armed = false;
  if (!ch.pending) return;
  ++stats().deploy_retransmits;
  ch.retransmitted = true;
  Transmit(ch, scheduler_->now(), /*reliable=*/false);
}

bool FaultPipeline::ControlRpc(StreamId id, SimTime now) {
  NetStats& s = stats();
  ++s.control_rpcs;
  if (!LinkUp(now)) {
    ++s.probe_failovers;
    return false;
  }
  for (std::uint32_t attempt = 0; attempt < kMaxProbeAttempts; ++attempt) {
    const bool request_lost = LossDraw(&down_, id);
    const bool response_lost = !request_lost && LossDraw(&up_, id);
    if (!request_lost && !response_lost) {
      s.probe_retransmits += attempt;
      return true;
    }
  }
  s.probe_retransmits += kMaxProbeAttempts - 1;
  ++s.probe_failovers;
  return false;
}

void FaultPipeline::StartRun(SimTime horizon) {
  base_->StartRun(horizon);
  if (!config_.reconcile) return;
  // Up-edges are the odd-indexed partition boundaries. Scheduling them
  // here — after the engine's lifecycle events, before the first stream
  // event — gives them the same FIFO seniority in both engines.
  for (std::size_t i = 1; i < config_.partition.size(); i += 2) {
    const SimTime up = config_.partition[i];
    if (up > horizon) break;
    scheduler_->ScheduleAt(up, [this, up] { OnReconnect(up); });
  }
}

void FaultPipeline::OnReconnect(SimTime t) {
  // Snapshot the channels that were pending before the exchange: installs
  // the engine issues *during* reconciliation are fresh traffic on a live
  // link and keep their ordinary retransmit path.
  std::vector<std::uint64_t> pending_keys;
  for (const auto& [key, ch] : channels_) {
    if (ch.pending) pending_keys.push_back(key);
  }
  if (reconcile_sink_) reconcile_sink_(t);
  NetStats& s = stats();
  for (const std::uint64_t key : pending_keys) {
    Channel& ch = channels_[key];
    if (!ch.pending) continue;
    if (ch.timer_armed) {
      scheduler_->Cancel(ch.timer);
      ch.timer_armed = false;
    }
    ++s.reconcile_deploys;
    Transmit(ch, t, /*reliable=*/true);
  }
}

std::uint64_t FaultPipeline::InFlight(std::size_t slot) const {
  const std::uint64_t held =
      slot < stash_in_flight_.size() ? stash_in_flight_[slot] : 0;
  return base_->InFlight(slot) + held;
}

void FaultPipeline::Finalize(SimTime horizon) {
  base_->Finalize(horizon);
  NetStats& s = stats();
  s.in_flight_at_end += stash_msgs_ + pending_ctl_wire_;
  s.in_flight_crossings_at_end += stash_crossings_;
  for (const auto& [key, ch] : channels_) {
    (void)key;
    if (ch.pending) ++s.deploy_unacked_at_end;
  }
}

}  // namespace asf
