#include "engine/system.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/rng.h"
#include "engine/protocol_factory.h"
#include "filter/filter_bank.h"
#include "sim/scheduler.h"

namespace asf {

Result<RunResult> RunSystem(const SystemConfig& config) {
  ASF_RETURN_IF_ERROR(config.Validate());
  const auto wall_start = std::chrono::steady_clock::now();

  // --- The stream sources (true values live here). ---
  std::unique_ptr<StreamSet> owned_streams;
  StreamSet* streams = nullptr;
  switch (config.source.type) {
    case SourceSpec::Type::kRandomWalk:
      owned_streams = std::make_unique<RandomWalkStreams>(config.source.walk);
      streams = owned_streams.get();
      break;
    case SourceSpec::Type::kTrace:
      owned_streams = std::make_unique<TraceStreams>(config.source.trace);
      streams = owned_streams.get();
      break;
    case SourceSpec::Type::kCustom:
      streams = config.source.custom;  // borrowed (see SourceSpec::Custom)
      break;
  }
  ASF_CHECK(streams != nullptr);
  const std::size_t n = streams->size();

  // --- Client side: one adaptive filter per stream. ---
  FilterBank filters(n);

  // --- The (simulated) network. ---
  RunResult result;
  Transport transport;
  transport.probe = [&streams, &filters](StreamId id) {
    const Value v = streams->value(id);
    filters.at(id).SyncReference(v);  // the probed value is now "reported"
    return v;
  };
  transport.region_probe = [&streams, &filters](
                               StreamId id,
                               const Interval& region) -> std::optional<Value> {
    const Value v = streams->value(id);
    if (!region.Contains(v)) return std::nullopt;
    filters.at(id).SyncReference(v);
    return v;
  };
  transport.deploy = [&streams, &filters](StreamId id,
                                          const FilterConstraint& constraint) {
    filters.Deploy(id, constraint, streams->value(id));
  };

  // --- Server side. ---
  ServerContext ctx(n, transport, &result.messages,
                    config.broadcast_counts_as_one
                        ? BroadcastCostModel::kSingleMessage
                        : BroadcastCostModel::kPerRecipient);
  Rng protocol_rng(config.seed ^ 0x9e3779b97f4a7c15ULL);
  std::unique_ptr<Protocol> protocol =
      MakeProtocol(config.query, config.protocol, config.rank_r,
                   config.fraction, config.ft, &ctx, &protocol_rng);

  // --- Oracle wiring. ---
  const auto run_oracle = [&](RunResult* out) {
    const OracleCheck check =
        JudgeAnswer(config.query, config.protocol, config.rank_r,
                    config.fraction, streams->values(), protocol->answer());
    ++out->oracle_checks;
    if (!check.ok) ++out->oracle_violations;
    out->max_f_plus = std::max(out->max_f_plus, check.f_plus);
    out->max_f_minus = std::max(out->max_f_minus, check.f_minus);
    out->max_worst_rank = std::max(out->max_worst_rank, check.worst_rank);
  };

  // --- Drive the simulation. ---
  Scheduler scheduler;
  bool query_active = false;

  streams->set_update_handler([&](StreamId id, Value v, SimTime t) {
    if (!query_active) return;  // warm-up: no query, no messages
    ++result.updates_generated;
    if (filters.at(id).OnValueChange(v)) {
      result.messages.Count(MessageType::kValueUpdate);
      ++result.updates_reported;
      protocol->HandleUpdate(id, v, t);
    }
    result.answer_size.Add(static_cast<double>(protocol->answer().size()));
    if (config.oracle.check_every_update) run_oracle(&result);
  });

  // Install the query. Scheduled before Start() so that at equal
  // timestamps initialization runs before the first update (FIFO order).
  scheduler.ScheduleAt(config.query_start, [&] {
    result.messages.set_phase(MessagePhase::kInit);
    protocol->Initialize(scheduler.now());
    result.messages.set_phase(MessagePhase::kMaintenance);
    result.fp_filters_installed = filters.CountFalsePositiveFilters();
    result.fn_filters_installed = filters.CountFalseNegativeFilters();
    query_active = true;
    if (config.oracle.check_every_update) run_oracle(&result);
  });

  // Periodic oracle sampling, if requested.
  std::function<void()> sample_tick;  // self-rescheduling
  if (config.oracle.sample_interval > 0) {
    sample_tick = [&] {
      if (query_active) run_oracle(&result);
      if (scheduler.now() + config.oracle.sample_interval <=
          config.duration) {
        scheduler.ScheduleAfter(config.oracle.sample_interval, sample_tick);
      }
    };
    scheduler.ScheduleAt(
        std::min(config.query_start + config.oracle.sample_interval,
                 config.duration),
        sample_tick);
  }

  streams->Start(&scheduler, config.duration);
  scheduler.RunUntil(config.duration);

  result.reinits = protocol->reinit_count();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return result;
}

std::string RunResult::ToString() const {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "maint_msgs=%llu init_msgs=%llu updates=%llu reported=%llu "
      "reinits=%llu answer_mean=%.2f oracle=%llu/%llu maxF+=%.3f maxF-=%.3f",
      static_cast<unsigned long long>(messages.MaintenanceTotal()),
      static_cast<unsigned long long>(messages.InitTotal()),
      static_cast<unsigned long long>(updates_generated),
      static_cast<unsigned long long>(updates_reported),
      static_cast<unsigned long long>(reinits), answer_size.mean(),
      static_cast<unsigned long long>(oracle_violations),
      static_cast<unsigned long long>(oracle_checks), max_f_plus,
      max_f_minus);
  return buf;
}

}  // namespace asf
