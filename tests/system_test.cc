#include "engine/system.h"

#include <gtest/gtest.h>

#include "trace/tcp_synth.h"

namespace asf {
namespace {

SystemConfig SmallWalkConfig() {
  SystemConfig config;
  RandomWalkConfig walk;
  walk.num_streams = 200;
  walk.seed = 7;
  config.source = SourceSpec::Walk(walk);
  config.query = QuerySpec::Range(400, 600);
  config.protocol = ProtocolKind::kZtNrp;
  config.duration = 500;
  return config;
}

// --- Validation ---

TEST(SystemConfigTest, RejectsProtocolQueryMismatch) {
  SystemConfig config = SmallWalkConfig();
  config.protocol = ProtocolKind::kRtp;  // rank protocol, range query
  EXPECT_FALSE(RunSystem(config).ok());

  config = SmallWalkConfig();
  config.query = QuerySpec::TopK(5);
  config.protocol = ProtocolKind::kFtNrp;  // range protocol, rank query
  EXPECT_FALSE(RunSystem(config).ok());
}

TEST(SystemConfigTest, RejectsBadTolerance) {
  SystemConfig config = SmallWalkConfig();
  config.protocol = ProtocolKind::kFtNrp;
  config.fraction = {0.7, 0.0};  // > 0.5
  EXPECT_FALSE(RunSystem(config).ok());
}

TEST(SystemConfigTest, RejectsOversizedK) {
  SystemConfig config = SmallWalkConfig();
  config.query = QuerySpec::TopK(201);  // only 200 streams
  config.protocol = ProtocolKind::kRtp;
  EXPECT_FALSE(RunSystem(config).ok());
}

TEST(SystemConfigTest, RejectsBadTiming) {
  SystemConfig config = SmallWalkConfig();
  config.duration = 0;
  EXPECT_FALSE(RunSystem(config).ok());
  config = SmallWalkConfig();
  config.query_start = config.duration;  // must be strictly before
  EXPECT_FALSE(RunSystem(config).ok());
}

TEST(SystemConfigTest, RejectsMissingTrace) {
  SystemConfig config = SmallWalkConfig();
  config.source = SourceSpec::Trace(nullptr);
  EXPECT_FALSE(RunSystem(config).ok());
}

// --- Behaviour ---

TEST(SystemTest, NoFilterReportsEveryUpdate) {
  SystemConfig config = SmallWalkConfig();
  config.protocol = ProtocolKind::kNoFilter;
  auto result = RunSystem(config);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->updates_generated, 0u);
  EXPECT_EQ(result->updates_reported, result->updates_generated);
  // Baseline accounting: maintenance messages == update messages.
  EXPECT_EQ(result->MaintenanceMessages(), result->updates_generated);
  // Init: probe-all only.
  EXPECT_EQ(result->messages.InitTotal(), 400u);
}

TEST(SystemTest, ZtNrpReportsOnlyCrossings) {
  SystemConfig config = SmallWalkConfig();
  auto result = RunSystem(config);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->updates_generated, 0u);
  EXPECT_LT(result->updates_reported, result->updates_generated);
  EXPECT_EQ(result->MaintenanceMessages(), result->updates_reported);
}

TEST(SystemTest, DeterministicForSeed) {
  SystemConfig config = SmallWalkConfig();
  config.protocol = ProtocolKind::kFtNrp;
  config.fraction = {0.3, 0.3};
  auto a = RunSystem(config);
  auto b = RunSystem(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->MaintenanceMessages(), b->MaintenanceMessages());
  EXPECT_EQ(a->updates_generated, b->updates_generated);
  EXPECT_EQ(a->updates_reported, b->updates_reported);
}

TEST(SystemTest, DifferentSeedsDiffer) {
  SystemConfig config = SmallWalkConfig();
  auto a = RunSystem(config);
  config.source.walk.seed = 8;
  auto b = RunSystem(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->updates_reported, b->updates_reported);
}

TEST(SystemTest, WarmupSuppressesPreQueryTraffic) {
  SystemConfig config = SmallWalkConfig();
  config.protocol = ProtocolKind::kNoFilter;
  config.query_start = 250;  // half the run is warm-up
  auto late = RunSystem(config);
  config.query_start = 0;
  auto full = RunSystem(config);
  ASSERT_TRUE(late.ok());
  ASSERT_TRUE(full.ok());
  // Warm-up updates are generated but neither counted nor reported.
  EXPECT_LT(late->updates_generated, full->updates_generated);
  EXPECT_GT(late->updates_generated, 0u);
  EXPECT_NEAR(static_cast<double>(late->updates_generated),
              static_cast<double>(full->updates_generated) / 2.0,
              static_cast<double>(full->updates_generated) * 0.15);
}

TEST(SystemTest, OracleWatchesEveryProtocol) {
  for (ProtocolKind kind :
       {ProtocolKind::kNoFilter, ProtocolKind::kZtNrp, ProtocolKind::kFtNrp}) {
    SystemConfig config = SmallWalkConfig();
    config.protocol = kind;
    config.fraction = {0.3, 0.3};
    config.oracle.check_every_update = true;
    auto result = RunSystem(config);
    ASSERT_TRUE(result.ok());
    EXPECT_GT(result->oracle_checks, 0u);
    EXPECT_EQ(result->oracle_violations, 0u)
        << ProtocolKindName(kind) << ": maxF+=" << result->max_f_plus
        << " maxF-=" << result->max_f_minus;
  }
}

TEST(SystemTest, OracleSamplingInterval) {
  SystemConfig config = SmallWalkConfig();
  config.oracle.sample_interval = 10;  // 500 time units -> ~50 samples
  auto result = RunSystem(config);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->oracle_checks, 45u);
  EXPECT_LE(result->oracle_checks, 55u);
  EXPECT_EQ(result->oracle_violations, 0u);
}

TEST(SystemTest, TraceSourceRuns) {
  TcpSynthConfig synth;
  synth.num_subnets = 100;
  synth.total_connections = 5000;
  synth.duration = 1000;
  auto trace = GenerateTcpTrace(synth);
  ASSERT_TRUE(trace.ok());

  SystemConfig config;
  config.source = SourceSpec::Trace(&trace.value());
  config.query = QuerySpec::Range(400, 600);
  config.protocol = ProtocolKind::kZtNrp;
  config.duration = 1000;
  auto result = RunSystem(config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->updates_generated, 5000u);
  EXPECT_GT(result->updates_reported, 0u);
}

TEST(SystemTest, RankProtocolsRunOnWalk) {
  SystemConfig config = SmallWalkConfig();
  config.query = QuerySpec::Knn(5, 500);
  config.protocol = ProtocolKind::kRtp;
  config.rank_r = 5;
  auto result = RunSystem(config);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->MaintenanceMessages(), 0u);
  // RTP answers are always exactly k.
  EXPECT_DOUBLE_EQ(result->answer_size.min(), 5.0);
  EXPECT_DOUBLE_EQ(result->answer_size.max(), 5.0);
}

TEST(SystemTest, AnswerSizeTracksBandForFtRp) {
  SystemConfig config = SmallWalkConfig();
  config.query = QuerySpec::Knn(10, 500);
  config.protocol = ProtocolKind::kFtRp;
  config.fraction = {0.4, 0.4};
  auto result = RunSystem(config);
  ASSERT_TRUE(result.ok());
  // Equations 8/10: answer size stays within [k/2, 2k].
  EXPECT_GE(result->answer_size.min(), 5.0);
  EXPECT_LE(result->answer_size.max(), 20.0);
}

TEST(SystemTest, SilentFilterCountsReported) {
  SystemConfig config = SmallWalkConfig();
  config.protocol = ProtocolKind::kFtNrp;
  config.fraction = {0.4, 0.4};
  auto result = RunSystem(config);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->fp_filters_installed, 0u);
  EXPECT_GT(result->fn_filters_installed, 0u);
  // ZT-NRP silences nobody.
  config.protocol = ProtocolKind::kZtNrp;
  auto exact = RunSystem(config);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact->fp_filters_installed, 0u);
  EXPECT_EQ(exact->fn_filters_installed, 0u);
}

TEST(SystemTest, ResultToStringMentionsKeyFields) {
  auto result = RunSystem(SmallWalkConfig());
  ASSERT_TRUE(result.ok());
  const std::string s = result->ToString();
  EXPECT_NE(s.find("maint_msgs="), std::string::npos);
  EXPECT_NE(s.find("updates="), std::string::npos);
}

TEST(SystemTest, WallClockIsMeasured) {
  auto result = RunSystem(SmallWalkConfig());
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->wall_seconds, 0.0);
}

}  // namespace
}  // namespace asf
