/// Microbenchmark of the multi-query update dispatch path — the fig11
/// scalability hot loop. Measurements:
///
///  * strip_scan Q=64/256/1024: the per-update crossing kernel over Q
///    queries' filters for one stream, exactly as the engine's update
///    handler runs it — the FilterArena SoA strips swept by the SIMD
///    kernel (src/common/simd.h; the q1024 point tracks the scaling curve
///    past the pre-SoA q256 cliff).
///  * aos_scan Q=256: the pre-SoA reference — scalar Filter::OnValueChange
///    over an array-of-structs strip. simd_speedup_q256 is the in-process
///    ratio kernel/AoS, the machine-stable metric CI guards.
///  * engine Q=64: end-to-end RunMultiQuerySystem throughput (generated
///    updates per wall second) with Q concurrent range queries over a
///    shared random-walk population.
///  * scan/index/auto crossover series Q=64..1M: the three dispatch
///    policies (DESIGN.md §10) replaying identical random-walk sequences
///    through FilterArena::DispatchUpdate. The scan does O(Q) work per
///    update; the interval index does O(log Q + crossings), so the series
///    locates the crossover and calibrates kDefaultAutoCrossover.
///
/// Writes BENCH_micro_dispatch.json by default (--json=PATH to override,
/// --json= to disable) and the crossover series to
/// BENCH_index_crossover.json (--crossover-json=PATH / empty to disable).

#include <cstdio>
#include <cstring>
#include <chrono>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/simd.h"
#include "engine/multi_system.h"
#include "filter/dispatch.h"
#include "filter/filter_arena.h"

namespace asf {
namespace {

constexpr std::size_t kStreams = 800;

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Staggered range constraints so a realistic minority fire per update
/// (same shapes as the engine measurement below).
FilterConstraint QueryConstraint(std::size_t q) {
  const double lo = 100.0 + 50.0 * static_cast<double>(q % 16);
  return FilterConstraint::Range(Interval(lo, lo + 100.0));
}

struct UpdateMix {
  std::vector<Value> values;
  std::vector<StreamId> ids;

  explicit UpdateMix(std::size_t num_streams) {
    Rng rng(7);
    for (int i = 0; i < 4096; ++i) {
      values.push_back(rng.Uniform(0, 1000));
      ids.push_back(static_cast<StreamId>(
          rng.Uniform(0, static_cast<double>(num_streams))));
    }
  }
};

/// The engine's inner loop in isolation: the SIMD crossing kernel over the
/// contiguous SoA strip of Q filters for the updated stream.
double StripScanUpdatesPerSec(std::size_t q_count,
                              std::uint64_t total_updates) {
  FilterArena arena(kStreams);
  for (std::size_t q = 0; q < q_count; ++q) {
    const std::size_t c = arena.Acquire();
    for (StreamId id = 0; id < kStreams; ++id) {
      arena.Deploy(id, c, QueryConstraint(q), 500.0);
    }
  }
  const UpdateMix mix(kStreams);

  std::uint64_t fired = 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t u = 0; u < total_updates; ++u) {
    const StreamId id = mix.ids[u & 4095];
    const std::uint64_t* words = arena.EvaluateUpdate(id, mix.values[u & 4095]);
    for (std::size_t w = 0; w < arena.fired_words(); ++w) {
      fired += static_cast<std::uint64_t>(__builtin_popcountll(words[w]));
    }
  }
  const double elapsed = Seconds(start);
  if (fired == 0) std::fprintf(stderr, "unreachable\n");
  return static_cast<double>(total_updates) / elapsed;
}

/// The pre-SoA reference: scalar OnValueChange over an AoS strip, exactly
/// the dispatch loop this kernel replaced (PR 2/3 layout).
double AosScanUpdatesPerSec(std::size_t q_count,
                            std::uint64_t total_updates) {
  std::vector<Filter> storage(kStreams * q_count);
  for (std::size_t q = 0; q < q_count; ++q) {
    for (StreamId id = 0; id < kStreams; ++id) {
      storage[id * q_count + q].Deploy(QueryConstraint(q), 500.0);
    }
  }
  const UpdateMix mix(kStreams);

  std::uint64_t fired = 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t u = 0; u < total_updates; ++u) {
    const StreamId id = mix.ids[u & 4095];
    const Value v = mix.values[u & 4095];
    Filter* strip = &storage[id * q_count];
    for (std::size_t q = 0; q < q_count; ++q) {
      if (strip[q].OnValueChange(v)) ++fired;
    }
  }
  const double elapsed = Seconds(start);
  if (fired == 0) std::fprintf(stderr, "unreachable\n");
  return static_cast<double>(total_updates) / elapsed;
}

/// One point of the scan/index crossover series. Large Q needs few
/// streams: the arena keeps Q bound lanes per strip, so Q=1M with the
/// usual 800 streams would be ~13 GB of lanes.
struct CrossoverPoint {
  const char* tag;              ///< metric-key suffix ("q16k")
  std::size_t q;                ///< live filter columns
  std::size_t streams;          ///< strips in the arena
  std::uint64_t scan_updates;   ///< measured updates on the O(Q) path
  std::uint64_t index_updates;  ///< measured updates on the indexed path
};

/// Dispatch throughput at one (Q, policy) point. Every policy replays the
/// same small-step random walks — small steps keep the crossing count per
/// update a vanishing fraction of Q, the output-sensitive regime the
/// index targets (uniform value jumps would cross ~half the endpoints and
/// hide the asymmetry).
double CrossoverUpdatesPerSec(const CrossoverPoint& pt, DispatchPolicy policy,
                              std::uint64_t total_updates) {
  FilterArena arena(pt.streams);
  arena.SetDispatchPolicy(policy);
  // Distinct narrow windows spread over the value space, deterministic
  // per point so scan/index/auto see identical filters.
  Rng qrng(101);
  for (std::size_t q = 0; q < pt.q; ++q) {
    const std::size_t c = arena.Acquire();
    const double lo = qrng.Uniform(0, 950);
    const FilterConstraint constraint =
        FilterConstraint::Range(Interval(lo, lo + 50.0));
    for (StreamId id = 0; id < pt.streams; ++id) {
      arena.Deploy(id, c, constraint, 500.0);
    }
  }

  constexpr std::size_t kWalkLen = 4096;
  std::vector<std::vector<Value>> walks(pt.streams);
  for (std::size_t id = 0; id < pt.streams; ++id) {
    Rng rng(MixSeed(303, id));
    double v = 500.0;
    walks[id].reserve(kWalkLen);
    for (std::size_t i = 0; i < kWalkLen; ++i) {
      v += rng.Uniform(-1.5, 1.5);
      if (v < 1.0) v = 1.0;
      if (v > 999.0) v = 999.0;
      walks[id].push_back(v);
    }
  }

  std::vector<std::uint32_t> fired;
  std::uint64_t fired_total = 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t u = 0; u < total_updates; ++u) {
    const StreamId id = static_cast<StreamId>(u % pt.streams);
    arena.DispatchUpdate(id, walks[id][(u / pt.streams) % kWalkLen], &fired);
    fired_total += fired.size();
  }
  const double elapsed = Seconds(start);
  if (fired_total == 0) std::fprintf(stderr, "unreachable\n");
  return static_cast<double>(total_updates) / elapsed;
}

/// End-to-end: Q range queries with staggered windows over one shared
/// walk population, protocol ZT-NRP (pure filter maintenance, no
/// tolerance slack) — the fig11 configuration shape.
double EngineUpdatesPerSec(std::size_t num_streams, std::size_t q_count,
                           double duration, std::uint64_t* out_updates) {
  MultiQueryConfig config;
  RandomWalkConfig walk;
  walk.num_streams = num_streams;
  walk.seed = 9;
  config.source = SourceSpec::Walk(walk);
  config.duration = duration;
  config.seed = 9;
  for (std::size_t q = 0; q < q_count; ++q) {
    QueryDeployment dep;
    dep.name = "q" + std::to_string(q);
    const double lo = 100.0 + 50.0 * static_cast<double>(q % 16);
    dep.query = QuerySpec::Range(lo, lo + 100.0);
    dep.protocol = ProtocolKind::kZtNrp;
    config.queries.push_back(dep);
  }
  auto result = RunMultiQuerySystem(config);
  ASF_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  *out_updates = result->updates_generated;
  return static_cast<double>(result->updates_generated) /
         result->wall_seconds;
}

int Main(int argc, char** argv) {
  const double scale = bench::Scale();

  std::printf("=== micro_dispatch (simd backend: %s, %d lanes) ===\n",
              simd::KernelBackend(), simd::KernelLanes());
  const double scan64 = StripScanUpdatesPerSec(
      64, static_cast<std::uint64_t>(2'000'000 * scale));
  std::printf("strip_scan Q=64    %12.3e updates/sec\n", scan64);
  const double scan256 = StripScanUpdatesPerSec(
      256, static_cast<std::uint64_t>(2'000'000 * scale));
  std::printf("strip_scan Q=256   %12.3e updates/sec\n", scan256);
  const double scan1024 = StripScanUpdatesPerSec(
      1024, static_cast<std::uint64_t>(500'000 * scale));
  std::printf("strip_scan Q=1024  %12.3e updates/sec\n", scan1024);

  const double aos256 = AosScanUpdatesPerSec(
      256, static_cast<std::uint64_t>(500'000 * scale));
  std::printf("aos_scan   Q=256   %12.3e updates/sec  (pre-SoA reference)\n",
              aos256);
  const double speedup256 = scan256 / aos256;
  std::printf("simd_speedup Q=256 %12.2fx\n", speedup256);

  std::uint64_t updates = 0;
  const double engine64 =
      EngineUpdatesPerSec(kStreams, 64, 2000 * scale, &updates);
  std::printf("engine Q=64        %12.3e updates/sec  (%llu updates)\n",
              engine64, static_cast<unsigned long long>(updates));

  // --- scan/index/auto crossover series (DESIGN.md §10) ---
  const CrossoverPoint points[] = {
      {"q64", 64, 512, 2'000'000, 2'000'000},
      {"q1k", 1024, 512, 400'000, 1'000'000},
      {"q16k", 16384, 256, 60'000, 600'000},
      {"q256k", 262144, 16, 6'000, 200'000},
      {"q1m", 1048576, 4, 1'500, 60'000},
  };
  std::printf("\ncrossover series (scan vs index vs auto, updates/sec):\n");
  std::vector<std::pair<std::string, double>> xmetrics;
  double crossover_q = 0.0;
  double auto_efficiency_min = 1e300;
  double index_speedup_q16k = 0.0;
  for (const CrossoverPoint& pt : points) {
    const auto scaled = [scale](std::uint64_t n) {
      const auto s = static_cast<std::uint64_t>(static_cast<double>(n) * scale);
      return s > 0 ? s : std::uint64_t{1};
    };
    const double scan = CrossoverUpdatesPerSec(pt, DispatchPolicy::kScan,
                                               scaled(pt.scan_updates));
    const double index = CrossoverUpdatesPerSec(pt, DispatchPolicy::kIndex,
                                                scaled(pt.index_updates));
    const double autod = CrossoverUpdatesPerSec(
        pt, DispatchPolicy::kAuto,
        scaled(pt.q >= kDefaultAutoCrossover ? pt.index_updates
                                             : pt.scan_updates));
    const double speedup = index / scan;
    std::printf("  Q=%-8zu scan %10.3e  index %10.3e  auto %10.3e"
                "  (index/scan %8.2fx)\n",
                pt.q, scan, index, autod, speedup);
    const std::string tag = pt.tag;
    xmetrics.emplace_back("scan_" + tag + "_updates_per_sec", scan);
    xmetrics.emplace_back("index_" + tag + "_updates_per_sec", index);
    xmetrics.emplace_back("auto_" + tag + "_updates_per_sec", autod);
    xmetrics.emplace_back("index_speedup_" + tag, speedup);
    if (crossover_q == 0.0 && index >= scan) {
      crossover_q = static_cast<double>(pt.q);
    }
    const double best = scan > index ? scan : index;
    const double efficiency = autod / best;
    if (efficiency < auto_efficiency_min) auto_efficiency_min = efficiency;
    if (tag == "q16k") index_speedup_q16k = speedup;
  }
  std::printf("crossover_q %.0f (first measured Q where index beats scan; "
              "auto constant %zu)\nauto_efficiency_min %.2f (auto vs "
              "better-of-two, worst point)\n",
              crossover_q, std::size_t{kDefaultAutoCrossover},
              auto_efficiency_min);
  xmetrics.emplace_back("crossover_q", crossover_q);
  xmetrics.emplace_back("auto_efficiency_min", auto_efficiency_min);
  xmetrics.emplace_back("auto_crossover_constant",
                        static_cast<double>(kDefaultAutoCrossover));

  std::string xpath = "BENCH_index_crossover.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--crossover-json=", 17) == 0) {
      xpath = argv[i] + 17;
    }
  }
  if (!xpath.empty()) {
    const Status status = bench::WriteJson(xpath, "index_crossover", xmetrics);
    if (!status.ok()) {
      std::fprintf(stderr, "json export failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", xpath.c_str());
  }

  return bench::FinishMicroBench(
      argc, argv, "BENCH_micro_dispatch.json", "micro_dispatch",
      {{"strip_scan_q64_updates_per_sec", scan64},
       {"strip_scan_q256_updates_per_sec", scan256},
       {"strip_scan_q1024_updates_per_sec", scan1024},
       {"aos_scan_q256_updates_per_sec", aos256},
       {"simd_speedup_q256", speedup256},
       {"engine_q64_updates_per_sec", engine64},
       {"index_speedup_q16k", index_speedup_q16k},
       {"crossover_q", crossover_q},
       {"simd_lanes", static_cast<double>(simd::KernelLanes())}});
}

}  // namespace
}  // namespace asf

int main(int argc, char** argv) { return asf::Main(argc, argv); }
