/// asf_trace — convert a binary sim-time event trace (written by
/// `asf_run --trace=FILE`) to Chrome trace_event JSON, loadable in
/// chrome://tracing or https://ui.perfetto.dev.
///
/// Examples:
///   asf_trace --in=run.trace --out=run.json
///   asf_trace --in=run.trace --out=run.json --ts-scale=1e3
///   asf_trace --in=run.trace --summary        # per-type counts only

#include <cstdio>

#include "common/flags.h"
#include "metrics/table.h"
#include "obs/trace.h"
#include "obs/trace_convert.h"

namespace asf {
namespace {

constexpr const char* kHelp = R"(asf_trace -- binary event trace to Chrome trace_event JSON

  --in=FILE             binary trace (from asf_run --trace) [required]
  --out=FILE            Chrome trace_event JSON output path
  --ts-scale=S          microseconds per sim-time unit      [1e6]
  --summary             print per-ring / per-type record counts

At least one of --out / --summary is required. The JSON loads in
chrome://tracing or Perfetto; each ring (shard) renders as its own
thread track, sim-time mapped to the microsecond axis via --ts-scale.
)";

Status RunFromFlags(const Flags& flags) {
  if (!flags.Has("in")) {
    return Status::InvalidArgument("--in=FILE is required");
  }
  if (!flags.Has("out") && !flags.Has("summary")) {
    return Status::InvalidArgument("nothing to do: pass --out or --summary");
  }
  ASF_ASSIGN_OR_RETURN(const double ts_scale,
                       flags.GetDouble("ts-scale", 1e6));
  if (!(ts_scale > 0)) {
    return Status::InvalidArgument("--ts-scale must be positive");
  }
  ASF_ASSIGN_OR_RETURN(const obs::TraceFileData data,
                       obs::ReadTraceBinary(flags.GetString("in")));

  if (flags.Has("summary")) {
    std::uint64_t by_type[static_cast<std::size_t>(
        obs::TraceEventType::kNumTypes)] = {};
    for (const obs::TraceFileRing& ring : data.rings) {
      for (const obs::TraceRecord& record : ring.records) {
        if (record.type <
            static_cast<std::uint16_t>(obs::TraceEventType::kNumTypes)) {
          ++by_type[record.type];
        }
      }
    }
    TextTable table({"ring", "records", "dropped"});
    for (std::size_t r = 0; r < data.rings.size(); ++r) {
      table.AddRow({Fmt("%zu", r), Fmt("%zu", data.rings[r].records.size()),
                    Fmt("%llu", (unsigned long long)data.rings[r].dropped)});
    }
    std::printf("%s\n", table.ToString().c_str());
    TextTable types({"event", "count"});
    for (std::size_t t = 0;
         t < static_cast<std::size_t>(obs::TraceEventType::kNumTypes); ++t) {
      if (by_type[t] == 0) continue;
      types.AddRow(
          {obs::TraceEventTypeName(static_cast<obs::TraceEventType>(t)),
           Fmt("%llu", (unsigned long long)by_type[t])});
    }
    std::printf("%s", types.ToString().c_str());
    std::printf("total: %llu records, %llu dropped\n",
                (unsigned long long)data.total_records(),
                (unsigned long long)data.total_dropped());
  }

  if (flags.Has("out")) {
    const std::string out = flags.GetString("out");
    const std::string json = obs::ChromeTraceJson(data, ts_scale);
    std::FILE* f = std::fopen(out.c_str(), "w");
    if (f == nullptr) {
      return Status::IoError("cannot open " + out + " for writing");
    }
    const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
    if (std::fclose(f) != 0 || !ok) {
      return Status::IoError("write failed: " + out);
    }
    std::printf("wrote %s (%llu events)\n", out.c_str(),
                (unsigned long long)data.total_records());
  }
  return Status::OK();
}

}  // namespace
}  // namespace asf

int main(int argc, char** argv) {
  auto flags = asf::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 2;
  }
  if (flags->Has("help")) {
    std::fputs(asf::kHelp, stdout);
    return 0;
  }
  const asf::Status status = asf::RunFromFlags(*flags);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n(try --help)\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
