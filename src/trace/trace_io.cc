#include "trace/trace_io.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

namespace asf {

Status WriteTraceCsv(const TraceData& trace, const std::string& path) {
  ASF_RETURN_IF_ERROR(trace.Validate());
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open for writing: " + path);
  }
  out << "num_streams," << trace.num_streams << "\n";
  if (!trace.initial_values.empty()) {
    out << "initial";
    char buf[64];
    for (Value v : trace.initial_values) {
      std::snprintf(buf, sizeof(buf), ",%.17g", v);
      out << buf;
    }
    out << "\n";
  }
  char buf[128];
  for (const TraceRecord& rec : trace.records) {
    std::snprintf(buf, sizeof(buf), "%.17g,%u,%.17g\n", rec.time, rec.stream,
                  rec.value);
    out << buf;
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

namespace {

/// Splits a CSV line on commas (no quoting; the format never needs it).
std::vector<std::string> SplitCsv(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::stringstream ss(line);
  while (std::getline(ss, field, ',')) fields.push_back(field);
  return fields;
}

Status ParseDouble(const std::string& s, double* out) {
  errno = 0;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || errno == ERANGE) {
    return Status::Corruption("bad numeric field: '" + s + "'");
  }
  return Status::OK();
}

}  // namespace

Result<TraceData> ReadTraceCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);

  TraceData trace;
  std::string line;
  if (!std::getline(in, line)) {
    return Status::Corruption("empty trace file: " + path);
  }
  {
    const auto fields = SplitCsv(line);
    if (fields.size() != 2 || fields[0] != "num_streams") {
      return Status::Corruption("expected 'num_streams,<n>' header");
    }
    double n = 0;
    ASF_RETURN_IF_ERROR(ParseDouble(fields[1], &n));
    if (n < 1) return Status::Corruption("num_streams must be >= 1");
    trace.num_streams = static_cast<std::size_t>(n);
  }

  bool first_data_line = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto fields = SplitCsv(line);
    if (first_data_line && !fields.empty() && fields[0] == "initial") {
      if (fields.size() != trace.num_streams + 1) {
        return Status::Corruption("initial line must list one value per stream");
      }
      trace.initial_values.resize(trace.num_streams);
      for (std::size_t i = 0; i < trace.num_streams; ++i) {
        ASF_RETURN_IF_ERROR(
            ParseDouble(fields[i + 1], &trace.initial_values[i]));
      }
      first_data_line = false;
      continue;
    }
    first_data_line = false;
    if (fields.size() != 3) {
      return Status::Corruption("expected '<time>,<stream>,<value>' record");
    }
    TraceRecord rec;
    double stream = 0;
    ASF_RETURN_IF_ERROR(ParseDouble(fields[0], &rec.time));
    ASF_RETURN_IF_ERROR(ParseDouble(fields[1], &stream));
    ASF_RETURN_IF_ERROR(ParseDouble(fields[2], &rec.value));
    if (stream < 0 || stream != std::floor(stream)) {
      return Status::Corruption("stream id must be a non-negative integer");
    }
    rec.stream = static_cast<StreamId>(stream);
    trace.records.push_back(rec);
  }
  ASF_RETURN_IF_ERROR(trace.Validate());
  return trace;
}

}  // namespace asf
