#include "engine/sharded_core.h"

#include <algorithm>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "engine/config.h"
#include "engine/query_slot.h"
#include "engine/spill.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace asf {

namespace {

/// Wire messages with fewer payloads than this replay their reactions
/// inline: the fan-out's publish/park round trip only pays for itself
/// once several queries share the physical message.
constexpr std::size_t kMinParallelPayloads = 4;

// Routed views are rebound against the shard arenas' shared generation
// counter after every lifecycle event; a transport closure must never
// touch one that survived a rebind.
inline void AssertViewFresh(const FilterBank& bank, const FilterArena& arena) {
  (void)bank;
  (void)arena;
  ASF_DCHECK(bank.bound_generation() == arena.generation());
}
}  // namespace

/// Server-side runtime of one deployed query — the same shared runtime
/// the serial engine uses (engine/query_slot.h), so wiring and
/// accounting cannot drift between the two.
struct ShardedSimulationCore::Slot : engine_internal::QuerySlot {
  /// Shared-state side effects this slot's reaction journaled during the
  /// parallel phase of the current wire message; committed serially in
  /// payload order, then cleared. Only the executor owning the slot ever
  /// appends (a slot appears at most once per wire message).
  std::vector<ReplayOp> journal;
};

ShardedSimulationCore::ShardedSimulationCore(const Options& options)
    : options_(options),
      wall_start_(std::chrono::steady_clock::now()) {
  const std::size_t num_shards = std::max<std::size_t>(1, options_.shards);
  // Resolve the replay executor count (Options::replay_workers): the
  // executors are the shard worker threads plus the coordinator standing
  // in for worker 0, so W never exceeds the shard count. Fault stages
  // force serial replay — a probe's failover verdict is branched on
  // mid-reaction, which journaling cannot represent.
  {
    const std::size_t hw =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
    std::size_t w = options_.replay_workers == 0
                        ? std::min(num_shards, hw)
                        : options_.replay_workers;
    w = std::min(w, num_shards);
    if (options_.base.net.HasFaults()) w = 1;
    replay_workers_ = std::max<std::size_t>(1, w);
  }
  const std::size_t n = options_.base.source.NumStreams();
  ASF_CHECK_MSG(options_.base.source.type != SourceSpec::Type::kCustom,
                "custom stream sources cannot be sharded");
  ASF_CHECK(n > 0);

  // The coordinator's merged value view starts from the sources' initial
  // values. Per-stream determinism makes one full (unstarted) instance an
  // exact stand-in for all shards' initial state.
  const std::unique_ptr<StreamSet> initial =
      MakeStreams(options_.base.source);
  ASF_CHECK(initial != nullptr);
  values_ = initial->values();

  if (options_.base.spill.enabled()) {
    spiller_ = engine_internal::QueryStateSpiller::Create(options_.base.spill,
                                                          "sharded");
  }

  const DispatchPolicy dispatch =
      ResolveDispatchPolicy(options_.base.dispatch);
  shards_.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    const StreamPartition partition{s, num_shards};
    // Shard s owns streams {s, s + S, s + 2S, ...}: rows = how many ids
    // below n are congruent to s.
    const std::size_t rows = n / num_shards + (s < n % num_shards ? 1 : 0);
    shards_.push_back(std::make_unique<Shard>(
        MakeStreams(options_.base.source, partition), rows));
    shards_.back()->arena.EnableCellTracking(true);
    shards_.back()->arena.SetDispatchPolicy(dispatch);
    arena_ptrs_.push_back(&shards_.back()->arena);
  }
  // Compaction relocations retag the moved column's owner once — the
  // arenas evolve in lockstep, so the hook lives on arena 0 only and the
  // other arenas' Release returns are merely cross-checked (RetireSlot).
  arena_ptrs_.front()->set_relocation_callback(
      [this](std::size_t from, std::size_t to) {
        const std::size_t owner = column_owner_[from];
        column_owner_[to] = owner;
        slots_[owner]->column = to;
      });

  // The delivery model runs on the coordinator: sends happen during the
  // serial replay stage, and delayed deliveries queue in net_scheduler_,
  // drained in merged time order (so they cross epoch barriers exactly
  // where the serial engine would run them).
  net_ = MakeNetworkModel(options_.base.net, options_.base.seed);
  net_delayed_ = options_.base.net.DelaysDelivery();
  net_->Bind(
      &net_scheduler_,
      [this](StreamId id, const NetworkModel::Payload* payloads,
             std::size_t count, SimTime at) {
        OnNetUpdate(id, payloads, count, at);
      },
      [this](std::size_t slot, StreamId id, const FilterConstraint& constraint,
             SimTime at) { OnNetDeploy(slot, id, constraint, at); });
  net_->BindReconcile([this](SimTime at) { OnNetReconcile(at); });

  // Observability attachment (DESIGN.md §14). Rings are partitioned per
  // writer thread: shard worker s owns ring s, the coordinator (replay,
  // net, lifecycle, spill) owns ring S = num_shards.
  obs_coord_ring_ = static_cast<std::uint16_t>(num_shards);
  const obs::ObsHooks& obs = options_.base.obs;
  if (obs.tracer != nullptr) obs.tracer->EnsureRings(num_shards + 1);
  if (obs.tracer != nullptr || obs.metrics != nullptr) {
    net_->set_obs(obs.metrics != nullptr ? obs.metrics->net_sink() : nullptr,
                  obs.tracer, obs_coord_ring_);
  }
  if (spiller_) {
    spiller_->set_obs(obs.tracer, obs_coord_ring_, obs.profiler,
                      &net_scheduler_);
  }
  for (const auto& shard : shards_) shard->arena.set_profiler(obs.profiler);
}

ShardedSimulationCore::~ShardedSimulationCore() {
  // Workers parked as replay executors wait on the task channel, not the
  // epoch condvar: release them first or the shutdown notify is missed.
  CloseReplayTasks();
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& w : workers_) w.join();
  }
}

std::size_t ShardedSimulationCore::AddQuery(const QueryDeployment& deployment) {
  const SimTime start =
      deployment.start < 0 ? options_.base.query_start : deployment.start;
  return DeployQuery(deployment, start);
}

std::size_t ShardedSimulationCore::DeployQuery(
    const QueryDeployment& deployment, SimTime at) {
  ASF_CHECK_MSG(!ran_, "DeployQuery after Run()");
  ASF_CHECK_MSG(at >= 0 && at < options_.base.duration,
                "deploy time outside [0, duration)");
  const std::size_t index = slots_.size();
  // Lightweight record until the deploy barrier wires the runtime
  // (WireSlot) — same lazy-wiring contract as the serial engine
  // (DESIGN.md §13).
  auto slot = std::make_unique<Slot>();
  slot->deployment = deployment;
  slot->index = index;
  slot->deploy_at = at;
  slot->stats.name = deployment.name;
  slots_.push_back(std::move(slot));
  if (deployment.end != kNeverRetire) RetireQuery(index, deployment.end);
  return index;
}

void ShardedSimulationCore::WireSlot(std::size_t index) {
  const std::size_t n = values_.size();

  // The wires between this query's server context and the shard-resident
  // filters. Values come from the coordinator's merged view (exact at the
  // current replay position); filter mutations route through the owning
  // shard's arena, which records the touched cell for the epoch replay.
  // Probes are blocking zero-time RPCs the network model only observes;
  // deploys route through it and install at the source on delivery.
  const auto make_transport = [this, index](FilterBank* bank) {
    Transport transport;
    transport.probe = [this, bank, index](StreamId id) -> std::optional<Value> {
      AssertViewFresh(*bank, *arena_ptrs_.front());
      if (replay_journal_mode_) {
        // Parallel phase (DESIGN.md §12): no fault stage is active on a
        // journaling run, so the RPC always succeeds; its shared effects
        // — the stats count and the reference sync — are journaled for
        // the serial commit. values_ is frozen during the delivery, so
        // this reads exactly what the serial engine's probe reads.
        Slot& slot = *slots_[index];
        const Value v = values_[id];
        slot.journal.push_back({ReplayOp::Kind::kControlRpc, id});
        slot.journal.push_back({ReplayOp::Kind::kSyncReference, id, v});
        return v;
      }
      // Same failover as the serial engine: a lost exchange reports no
      // value and the server context serves its cache.
      if (!net_->ControlRpc(id, coord_now_)) return std::nullopt;
      const Value v = values_[id];
      bank->SyncReference(id, v);  // the probed value is now "reported"
      return v;
    };
    transport.region_probe =
        [this, bank, index](StreamId id,
                            const Interval& region) -> std::optional<Value> {
      AssertViewFresh(*bank, *arena_ptrs_.front());
      if (replay_journal_mode_) {
        Slot& slot = *slots_[index];
        slot.journal.push_back({ReplayOp::Kind::kControlRpc, id});
        const Value v = values_[id];
        if (!region.Contains(v)) return std::nullopt;
        slot.journal.push_back({ReplayOp::Kind::kSyncReference, id, v});
        return v;
      }
      if (!net_->ControlRpc(id, coord_now_)) return std::nullopt;
      const Value v = values_[id];
      if (!region.Contains(v)) return std::nullopt;
      bank->SyncReference(id, v);
      return v;
    };
    transport.deploy = [this, index](StreamId id,
                                     const FilterConstraint& constraint) {
      if (replay_journal_mode_) {
        slots_[index]->journal.push_back(
            {ReplayOp::Kind::kDeploy, id, 0, constraint});
        return;
      }
      net_->SendDeploy(index, id, constraint, coord_now_);
    };
    return transport;
  };
  Slot& slot = *slots_[index];
  engine_internal::WireQuerySlot(&slot, slot.deployment, slot.deploy_at, n,
                                 options_.base.seed, index, make_transport);
  // Lets protocols relax their zero-delay belief assertions while
  // messages may be in transit (DESIGN.md §9).
  slot.ctx->set_delayed_delivery(net_delayed_);
}

void ShardedSimulationCore::RetireQuery(std::size_t slot, SimTime at) {
  ASF_CHECK_MSG(!ran_, "RetireQuery after Run()");
  ASF_CHECK(slot < slots_.size());
  ASF_CHECK_MSG(at > slots_[slot]->deploy_at,
                "retire time must follow the deploy time");
  slots_[slot]->retire_at = at;
}

void ShardedSimulationCore::RunOracle(Slot& slot) {
  // Same transit attribution as the serial engine (see
  // SimulationCore::RunOracle).
  const std::uint64_t before = slot.stats.oracle_violations;
  engine_internal::JudgeSlot(slot, values_);
  if (slot.stats.oracle_violations != before &&
      net_->InFlight(slot.index) > 0) {
    ++slot.stats.oracle_violations_in_flight;
  }
}

void ShardedSimulationCore::OracleTick() {
  for (auto& slot : slots_) {
    if (slot->live) RunOracle(*slot);
  }
}

void ShardedSimulationCore::RebindLiveViews() {
  const std::uint64_t generation = arena_ptrs_.front()->generation();
  for (std::size_t c = 0; c < column_owner_.size(); ++c) {
    *slots_[column_owner_[c]]->filters =
        FilterBank(arena_ptrs_, c, values_.size(), generation);
  }
}

void ShardedSimulationCore::InstallSlot(std::size_t index, SimTime at) {
  Slot& slot = *slots_[index];
  ASF_CHECK(!slot.live);
  WireSlot(index);

  // Take the same column in every shard arena; the arenas evolve in
  // lockstep, so the indices (and generations) always agree.
  const std::size_t column = arena_ptrs_.front()->Acquire();
  for (std::size_t s = 1; s < arena_ptrs_.size(); ++s) {
    ASF_CHECK(arena_ptrs_[s]->Acquire() == column);
  }
  slot.column = column;
  column_owner_.push_back(index);
  ASF_CHECK(column_owner_.size() == arena_ptrs_.front()->live());
  slot.live = true;
  RebindLiveViews();
  peak_live_ = std::max(peak_live_, column_owner_.size());

  slot.answer_sampled_upto = updates_generated_;
  slot.stats.deployed_at = at;
  ASF_TRACE_EVENT(options_.base.obs.tracer, obs_coord_ring_,
                  obs::TraceEventType::kDeploy, at,
                  static_cast<std::uint32_t>(index), 0, column_owner_.size());

  slot.stats.messages.set_phase(MessagePhase::kInit);
  slot.protocol->Initialize(at);
  slot.stats.messages.set_phase(MessagePhase::kMaintenance);
  slot.stats.fp_filters_installed = slot.filters->CountFalsePositiveFilters();
  slot.stats.fn_filters_installed = slot.filters->CountFalseNegativeFilters();
  slot.answer_cur_size = static_cast<double>(slot.protocol->answer().size());
  if (options_.base.oracle.check_every_update) RunOracle(slot);
}

void ShardedSimulationCore::RetireSlot(std::size_t index, SimTime at) {
  Slot& slot = *slots_[index];
  ASF_CHECK(slot.live);

  // Uninstall this query's filters (termination counterpart of the
  // initial installation), then close the books inside the live window.
  slot.ctx->DeployAll(FilterConstraint::NoFilter());
  FlushAnswerSamples(slot, updates_generated_);
  slot.stats.retired_at = at;
  slot.stats.reinits = slot.protocol->reinit_count();
  slot.live = false;

  // Release the column in every arena; the compaction move is the same
  // everywhere, so arena 0's relocation callback retags the moved owner
  // once and the other arenas' returns are only cross-checked.
  const std::size_t moved = arena_ptrs_.front()->Release(slot.column);
  for (std::size_t s = 1; s < arena_ptrs_.size(); ++s) {
    ASF_CHECK(arena_ptrs_[s]->Release(slot.column) == moved);
  }
  column_owner_.pop_back();
  slot.column = FilterArena::kNoColumn;
  *slot.filters = FilterBank();  // detach: any further access trips checks
  RebindLiveViews();

  ASF_TRACE_EVENT(options_.base.obs.tracer, obs_coord_ring_,
                  obs::TraceEventType::kRetire, at,
                  static_cast<std::uint32_t>(index), 0, column_owner_.size());

  // Retires run at epoch barriers with every shard quiescent, so the
  // coordinator can park the closed books on pages and free the hot
  // copies right here (DESIGN.md §13). The journal is empty between wire
  // messages; drop its capacity along with the rest.
  if (spiller_) {
    slot.journal.shrink_to_fit();
    engine_internal::SpillRetiredSlot(*spiller_, slot);
  }
}

void ShardedSimulationCore::FlushAnswerSamples(Slot& slot,
                                               std::uint64_t upto) {
  engine_internal::FlushAnswerSamples(slot, upto);
}

void ShardedSimulationCore::ReplayUpdate(Shard& shard,
                                         const Shard::Update& update) {
  // The merged view advances for every update — exactly the StreamSet
  // state the serial engine's handler observes — even while no query is
  // live (the handler then returns before counting).
  values_[update.id] = update.value;
  const std::size_t live = column_owner_.size();
  if (live == 0) return;
  coord_now_ = update.time;
  ++updates_generated_;

  // Merge the update's speculated fired list with the strip's touched
  // columns, ascending. Columns whose cells were touched by a server
  // reaction earlier in this epoch lost their speculated entries;
  // re-evaluate them scalar against the canonical (already-overwritten,
  // hence exact) state. Untouched speculated entries are exact as
  // computed. Both inputs are sorted lists, so the replay cost is
  // O(speculated + touched) — output-sensitive like the dispatch itself,
  // with no O(live) mask walk.
  const StreamId row = update.id / shards_.size();
  const std::uint32_t* spec = shard.fired.data() + update.fired_begin;
  const std::size_t spec_n = update.fired_count;
  const std::vector<std::uint32_t>& touched = shard.arena.TouchedColumns(row);
  // Batched self-healing: re-evaluate every touched column of this strip
  // in one pass (a SIMD inside-mask per 64-column word, scalar for short
  // word runs) instead of one EvaluateColumn call per touched column per
  // reaction. touched_fired_ is the ascending fired subset; the merge
  // below only tests membership.
  shard.arena.EvaluateTouched(row, update.value, touched, &touched_fired_);
  fired_slots_.clear();
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t k = 0;
  while (i < spec_n || j < touched.size()) {
    std::uint32_t c;
    bool is_touched;
    if (j == touched.size() || (i < spec_n && spec[i] < touched[j])) {
      c = spec[i++];
      is_touched = false;
    } else {
      c = touched[j++];
      is_touched = true;
      if (i < spec_n && spec[i] == c) ++i;  // superseded speculation
    }
    if (c >= live) continue;  // stale touched entries cannot exist; safety
    if (is_touched) {
      while (k < touched_fired_.size() && touched_fired_[k] < c) ++k;
      if (k == touched_fired_.size() || touched_fired_[k] != c) continue;
    }
    fired_slots_.push_back(column_owner_[c]);
  }
  // The crossings travel through the network model and come back via
  // OnNetUpdate — inside this replay step for instant delivery, drained
  // later in merged time order otherwise (DESIGN.md §9).
  if (!fired_slots_.empty()) {
    ASF_TRACE_EVENT(options_.base.obs.tracer, obs_coord_ring_,
                    obs::TraceEventType::kWireSend, update.time, update.id,
                    update.value, fired_slots_.size());
    net_->SendUpdate(update.id, update.value, fired_slots_, update.time);
  }
  if (options_.base.oracle.check_every_update) {
    for (auto& slot : slots_) {
      if (slot->live) RunOracle(*slot);
    }
  }
}

void ShardedSimulationCore::OnNetUpdate(StreamId id,
                                        const NetworkModel::Payload* payloads,
                                        std::size_t count, SimTime at) {
  obs::ScopedPhase obs_phase(options_.base.obs.profiler,
                             obs::Phase::kNetFlush);
  ASF_TRACE_EVENT(options_.base.obs.tracer, obs_coord_ring_,
                  obs::TraceEventType::kWireDeliver, at, id,
                  count != 0 ? payloads[count - 1].value : 0, count);
  if (replay_workers_ > 1 && count >= kMinParallelPayloads) {
    ParallelDeliverWireMessage(id, payloads, count, at);
    return;
  }
  engine_internal::DeliverWireMessage(
      slots_, *net_, net_delayed_, options_.base.oracle.check_every_update,
      updates_generated_, physical_updates_, id, payloads, count, at,
      [this] {
        for (auto& slot : slots_) {
          if (slot->live) RunOracle(*slot);
        }
      });
}

void ShardedSimulationCore::ParallelDeliverWireMessage(
    StreamId id, const NetworkModel::Payload* payloads, std::size_t count,
    SimTime at) {
  // Serial prepass: DeliverWireMessage's shared accounting, in payload
  // order, through the same admission gate — one physical message,
  // per-payload drop/suppression books, seq floors (DESIGN.md §12).
  ++physical_updates_;
  task_admit_.assign(count, 0);
  bool delivered = false;
  for (std::size_t i = 0; i < count; ++i) {
    const NetworkModel::Payload& p = payloads[i];
    if (engine_internal::AdmitPayload(*slots_[p.slot], *net_, id, p)) {
      task_admit_[i] = 1;
      delivered = true;
    }
  }
  if (delivered) {
    ASF_DCHECK(assist_open_);
    // Parallel phase: per-slot protocol reactions, partitioned
    // slot % W across the executors. Each reaction touches only its
    // slot's private state; every shared side effect is journaled by the
    // transports. Publish the task fields, then release them with the
    // sequence increment; the coordinator is executor 0.
    replay_journal_mode_ = true;
    task_payloads_ = payloads;
    task_count_ = count;
    task_stream_ = id;
    task_at_ = at;
    task_kind_ = ReplayTask::kDeliver;
    task_pending_.store(static_cast<std::uint32_t>(replay_workers_ - 1),
                        std::memory_order_relaxed);
    task_seq_.fetch_add(1, std::memory_order_release);
    task_seq_.notify_all();
    RunExecutorShare(0);
    for (;;) {
      const std::uint32_t pending =
          task_pending_.load(std::memory_order_acquire);
      if (pending == 0) break;
      task_pending_.wait(pending, std::memory_order_acquire);
    }
    replay_journal_mode_ = false;
    // Serial commit: replay every delivered slot's journal in payload
    // order, so net counters, reference syncs, constraint sends — and
    // any jitter RNG draws they trigger — happen in exactly the serial
    // engine's order.
    for (std::size_t i = 0; i < count; ++i) {
      if (task_admit_[i] != 0) CommitSlotJournal(*slots_[payloads[i].slot]);
    }
  }
  // DeliverWireMessage's arrival-time re-audit, after the whole message
  // like the serial path.
  if (net_delayed_ && delivered && options_.base.oracle.check_every_update) {
    for (auto& slot : slots_) {
      if (slot->live) RunOracle(*slot);
    }
  }
}

void ShardedSimulationCore::RunExecutorShare(std::size_t executor) {
  const NetworkModel::Payload* payloads = task_payloads_;
  const std::size_t count = task_count_;
  const StreamId id = task_stream_;
  const SimTime at = task_at_;
  for (std::size_t i = 0; i < count; ++i) {
    const NetworkModel::Payload& p = payloads[i];
    if (task_admit_[i] == 0 || p.slot % replay_workers_ != executor) continue;
    Slot& slot = *slots_[p.slot];
    engine_internal::DeliverUpdateToSlot(slot, id, p.value, at,
                                         updates_generated_);
    if (net_delayed_) slot.stats.update_delay.Add(at - p.crossed_at);
  }
}

void ShardedSimulationCore::CommitSlotJournal(Slot& slot) {
  for (const ReplayOp& op : slot.journal) {
    switch (op.kind) {
      case ReplayOp::Kind::kControlRpc:
        // Always succeeds here (journaling runs carry no fault stage);
        // performs the stats count the parallel phase deferred.
        net_->ControlRpc(op.id, coord_now_);
        break;
      case ReplayOp::Kind::kSyncReference:
        slot.filters->SyncReference(op.id, op.value);
        break;
      case ReplayOp::Kind::kDeploy:
        net_->SendDeploy(slot.index, op.id, op.constraint, coord_now_);
        break;
    }
  }
  slot.journal.clear();
}

void ShardedSimulationCore::AssistReplay(std::size_t executor,
                                         std::uint64_t seen) {
  for (;;) {
    task_seq_.wait(seen, std::memory_order_acquire);
    const std::uint64_t cur = task_seq_.load(std::memory_order_acquire);
    if (cur == seen) continue;  // spurious wake
    seen = cur;
    const bool close = task_kind_ == ReplayTask::kClose;
    if (!close) RunExecutorShare(executor);
    if (task_pending_.fetch_sub(1, std::memory_order_release) == 1) {
      task_pending_.notify_all();
    }
    if (close) return;
  }
}

void ShardedSimulationCore::CloseReplayTasks() {
  if (!assist_open_) return;
  task_kind_ = ReplayTask::kClose;
  task_pending_.store(static_cast<std::uint32_t>(replay_workers_ - 1),
                      std::memory_order_relaxed);
  task_seq_.fetch_add(1, std::memory_order_release);
  task_seq_.notify_all();
  for (;;) {
    const std::uint32_t pending = task_pending_.load(std::memory_order_acquire);
    if (pending == 0) break;
    task_pending_.wait(pending, std::memory_order_acquire);
  }
  assist_open_ = false;
}

bool ShardedSimulationCore::PinThreadToCore(std::size_t core) {
#if defined(__linux__)
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(core % hw), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)core;
  return false;
#endif
}

void ShardedSimulationCore::OnNetDeploy(std::size_t slot_index, StreamId id,
                                        const FilterConstraint& constraint,
                                        SimTime at) {
  Slot& slot = *slots_[slot_index];
  if (!slot.live) {
    ++net_->stats().deploy_dropped_retired;
    ASF_TRACE_EVENT(options_.base.obs.tracer, obs_coord_ring_,
                    obs::TraceEventType::kWireDrop, at, id, 0, slot_index);
    return;
  }
  (void)at;
  AssertViewFresh(*slot.filters, *arena_ptrs_.front());
  // Routed through the bank so the owning shard's arena records the
  // touched cell for this epoch's self-healing replay (DESIGN.md §8).
  // Compensation mirrors the serial engine (DESIGN.md §11).
  slot.filters->Deploy(
      id, CompensateConstraint(constraint, options_.base.net.comp),
      values_[id]);
}

void ShardedSimulationCore::OnNetReconcile(SimTime at) {
  // Runs inside DrainDeliveries at the up-edge's merged time position, so
  // values_ is exactly the serial engine's StreamSet state there.
  engine_internal::ReconcileSlots(slots_, values_, *net_, updates_generated_,
                                  at);
  if (options_.base.oracle.check_every_update) {
    for (auto& slot : slots_) {
      if (slot->live) RunOracle(*slot);
    }
  }
}

void ShardedSimulationCore::OracleSampleTick() {
  OracleTick();
  if (net_scheduler_.now() + options_.base.oracle.sample_interval <=
      options_.base.duration) {
    net_scheduler_.ScheduleAfter(options_.base.oracle.sample_interval,
                                 [this] { OracleSampleTick(); });
  }
}

void ShardedSimulationCore::DrainDeliveries(SimTime limit, SimTime to) {
  // Event callbacks (periodic oracle samples, OnNetUpdate / OnNetDeploy /
  // batch flushes) run here, between replayed updates, exactly where the
  // serial scheduler would interleave them. Ticks and deliveries share
  // one queue so exact-tie order (a batch flush landing on a sample grid
  // point) follows FIFO scheduling seniority, like the serial engine.
  for (;;) {
    const SimTime next = net_scheduler_.NextEventTime();
    if (next > limit || next >= to) break;
    coord_now_ = next;
    net_scheduler_.Step();
  }
}

void ShardedSimulationCore::ReplayEpoch(SimTime from, SimTime to) {
  (void)from;
  // S-way merge of the shard logs by (time, stream id). Same-time ties
  // across shards are ordered by stream id — the documented divergence
  // from the serial scheduler's FIFO seniority, unreachable under
  // continuous-time workloads.
  for (;;) {
    Shard* best = nullptr;
    for (const auto& shard : shards_) {
      if (shard->cursor >= shard->log.size()) continue;
      const Shard::Update& u = shard->log[shard->cursor];
      if (best == nullptr) {
        best = shard.get();
        continue;
      }
      const Shard::Update& b = best->log[best->cursor];
      if (u.time < b.time || (u.time == b.time && u.id < b.id)) {
        best = shard.get();
      }
    }
    if (best == nullptr) break;
    const Shard::Update& update = best->log[best->cursor];
    // Periodic oracle samples and pending network deliveries interleave
    // in time order (both before the update at exactly equal timestamps;
    // see header).
    DrainDeliveries(update.time, to);
    ReplayUpdate(*best, update);
    ++best->cursor;
  }
  DrainDeliveries(to, to);
}

void ShardedSimulationCore::WorkerLoop(std::size_t shard_index) {
  if (pinned_) PinThreadToCore(shard_index);
  Shard& shard = *shards_[shard_index];
  // Workers 1..W-1 park as replay executors after each epoch's
  // speculation; worker 0 never does (the coordinator is executor 0, and
  // under pinning they share core 0 without ever running concurrently).
  const bool assist = shard_index > 0 && shard_index < replay_workers_;
  std::uint64_t seen_seq = 0;
  for (;;) {
    SimTime to;
    bool final_flush;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || epoch_seq_ != seen_seq; });
      if (shutdown_) return;
      seen_seq = epoch_seq_;
      to = speculate_to_;
      final_flush = final_flush_;
    }
    {
      // Each worker's speculation wall accrues to the sweep phase in its
      // own thread-local profiler state; Merged() folds them together.
      obs::ScopedPhase obs_phase(options_.base.obs.profiler,
                                 obs::Phase::kSweep);
      if (final_flush) {
        shard.scheduler.RunUntil(to);  // events at the horizon itself
      } else {
        shard.scheduler.RunBefore(to);
      }
    }
    // Snapshot the task sequence *before* announcing speculation done:
    // the coordinator publishes replay tasks only after every worker has
    // announced, so no task can land between this load and the wait in
    // AssistReplay — the wait is guaranteed to observe it.
    std::uint64_t replay_seen = 0;
    if (assist) replay_seen = task_seq_.load(std::memory_order_acquire);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++workers_done_;
    }
    done_cv_.notify_one();
    if (assist) AssistReplay(shard_index, replay_seen);
  }
}

void ShardedSimulationCore::SpeculateEpoch(SimTime from, SimTime to) {
  (void)from;
  // Release executors still parked from the previous epoch's replay back
  // to the epoch condvar before signaling the next round. (The window
  // stays open across ReplayEpoch's end because the final delivery drain
  // after the epoch loop can still fan out — Run() closes it there.)
  CloseReplayTasks();
  // Fresh epoch: logs restart, speculation state is the canonical state
  // (all barrier mutations applied), touched cells reset.
  epoch_live_ = arena_ptrs_.front()->live();
  for (const auto& shard : shards_) {
    shard->log.clear();
    shard->fired.clear();
    shard->cursor = 0;
    shard->arena.ClearTouched();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    speculate_to_ = to;
    final_flush_ = to >= options_.base.duration;
    workers_done_ = 0;
    ++epoch_seq_;
  }
  work_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return workers_done_ == shards_.size(); });
  }
  // Every worker has announced and snapshotted the task sequence; workers
  // 1..W-1 are parked (or parking) in AssistReplay, so the coming replay
  // stage may publish fan-out tasks.
  assist_open_ = replay_workers_ > 1;
}

void ShardedSimulationCore::Run() {
  ASF_CHECK_MSG(!ran_, "Run() called twice");
  ASF_CHECK_MSG(!slots_.empty(), "Run() without any deployed query");
  ran_ = true;
  const SimTime duration = options_.base.duration;

  // Root profiler scope on the coordinator: epoch orchestration and
  // everything no finer phase claims accrues to kOther (worker threads
  // report their speculation wall separately under kSweep).
  obs::ScopedPhase obs_root(options_.base.obs.profiler, obs::Phase::kOther);

  // Gauges sampled at snapshot grid points; the sharded engine drains
  // due grid points at each epoch barrier (hooks.h), so a sample at T
  // reflects the merged state of the barrier that covers T.
  obs::MetricsRegistry* const obs_reg = options_.base.obs.metrics;
  const SimTime obs_every = options_.base.obs.metrics_every;
  SimTime obs_next_snap = obs_every;
  if (obs_reg != nullptr) {
    obs_reg->RegisterGauge("updates_generated", [this] {
      return static_cast<double>(updates_generated_);
    });
    obs_reg->RegisterGauge("live_queries", [this] {
      return static_cast<double>(column_owner_.size());
    });
    obs_reg->RegisterGauge("net_crossings", [this] {
      return static_cast<double>(net_->stats().crossings);
    });
    obs_reg->RegisterGauge("net_wire_updates", [this] {
      return static_cast<double>(net_->stats().update_messages);
    });
    obs_reg->RegisterGauge("net_staleness_mean",
                           [this] { return net_->stats().delay.mean(); });
    obs_reg->RegisterGauge("spill_resident_bytes", [this] {
      return spiller_ ? static_cast<double>(
                            spiller_->Telemetry().pool_resident_bytes)
                      : 0.0;
    });
    obs_reg->RegisterGauge("replay_fraction", [this] {
      const double elapsed = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() -
                                 wall_start_)
                                 .count();
      return elapsed > 0 ? replay_seconds_ / elapsed : 0.0;
    });
  }
  const auto obs_drain_snapshots = [&](SimTime upto) {
    if (obs_reg == nullptr || obs_every <= 0) return;
    while (obs_next_snap <= upto && obs_next_snap <= duration) {
      obs_reg->SnapshotAt(obs_next_snap);
      obs_next_snap += obs_every;
    }
  };

  // Each shard speculates into its log: every local update is recorded
  // and, while queries are live, evaluated against the shard's strips
  // under the epoch-start filter state.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard* shard = shards_[s].get();
    const std::uint16_t ring = static_cast<std::uint16_t>(s);
    shard->streams->set_update_handler(
        [this, shard, ring](StreamId id, Value v, SimTime t) {
          (void)ring;
          Shard::Update update{t, id, v,
                               static_cast<std::uint32_t>(shard->fired.size()),
                               0};
          if (epoch_live_ > 0) {
            ASF_TRACE_EVENT(options_.base.obs.tracer, ring,
                            obs::TraceEventType::kValueUpdate, t, id, v, 0);
            // The configured dispatch policy (SIMD scan or stabbing
            // index) speculates under the epoch-start filter state.
            shard->arena.DispatchUpdate(id / shards_.size(), v,
                                        &shard->fired_scratch);
            update.fired_count =
                static_cast<std::uint32_t>(shard->fired_scratch.size());
#if ASF_OBS_TRACE_COMPILED
            if (options_.base.obs.tracer != nullptr &&
                options_.base.obs.tracer->Wants(obs::kCatCrossing)) {
              for (const std::uint32_t c : shard->fired_scratch) {
                options_.base.obs.tracer->Emit(
                    ring, obs::TraceEventType::kCrossing, t, c, v,
                    shard->fired_scratch.size());
              }
            }
#endif
            shard->fired.insert(shard->fired.end(),
                                shard->fired_scratch.begin(),
                                shard->fired_scratch.end());
          }
          shard->log.push_back(update);
        });
    shard->streams->Start(&shard->scheduler, duration);
  }

  // Periodic oracle sampling: the same self-rescheduling event the
  // serial engine schedules, living in the coordinator's queue. Scheduled
  // before any delivery can be (no send precedes Run), so its FIFO
  // seniority against flushes and deliveries matches the serial
  // scheduler's.
  if (options_.base.oracle.sample_interval > 0) {
    net_scheduler_.ScheduleAt(
        std::min(
            options_.base.query_start + options_.base.oracle.sample_interval,
            duration),
        [this] { OracleSampleTick(); });
  }

  // Model-owned timers (partition reconnect exchanges) are scheduled
  // after the oracle tick, exactly like the serial engine calls StartRun
  // after scheduling it, so FIFO seniority at equal timestamps matches.
  net_->StartRun(duration);

  // Epoch boundaries: a regular speculation grid plus every lifecycle
  // event time (lifecycle executes only at barriers, keeping the column
  // space fixed within an epoch).
  const SimTime epoch_len =
      options_.epoch > 0 ? options_.epoch : duration / 128;
  std::vector<std::pair<SimTime, std::size_t>> deploys;   // (time, slot)
  std::vector<std::pair<SimTime, std::size_t>> retires;   // (time, slot)
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    deploys.emplace_back(slots_[i]->deploy_at, i);
    // A retirement at or beyond the horizon is the same observable run as
    // never retiring (see SimulationCore::Run).
    if (slots_[i]->retire_at < duration) {
      retires.emplace_back(slots_[i]->retire_at, i);
    }
  }
  std::stable_sort(deploys.begin(), deploys.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::stable_sort(retires.begin(), retires.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::size_t next_deploy = 0;
  std::size_t next_retire = 0;

  // Spin up the worker pool, pinning first so the workers (which read
  // pinned_ at startup) inherit the decision: coordinator on core 0,
  // shard worker s on core s mod hardware_concurrency.
  if (options_.pin_threads) pinned_ = PinThreadToCore(0);
  workers_.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    workers_.emplace_back([this, s] { WorkerLoop(s); });
  }

  SimTime now = 0;
  std::uint64_t obs_epoch = 0;
  while (now < duration) {
    // Barrier at `now`: lifecycle events in the serial order — every
    // deployment first, then every retirement, each in slot order.
    coord_now_ = now;
    obs_drain_snapshots(now);
    ASF_TRACE_EVENT(options_.base.obs.tracer, obs_coord_ring_,
                    obs::TraceEventType::kEpochBarrier, now, 0, 0, obs_epoch);
    ++obs_epoch;
    while (next_deploy < deploys.size() && deploys[next_deploy].first == now) {
      InstallSlot(deploys[next_deploy].second, now);
      ++next_deploy;
    }
    while (next_retire < retires.size() && retires[next_retire].first == now) {
      RetireSlot(retires[next_retire].second, now);
      ++next_retire;
    }
    // Coordinator events at exactly the barrier time (periodic samples,
    // deliveries) run in the next epoch's replay drain — after lifecycle,
    // like the serial scheduler's FIFO order (lifecycle events hold the
    // lowest sequence numbers).

    // Next boundary: the speculation grid or the next lifecycle event,
    // whichever comes first.
    SimTime next = std::min(now + epoch_len, duration);
    if (next_deploy < deploys.size()) {
      next = std::min(next, deploys[next_deploy].first);
    }
    if (next_retire < retires.size()) {
      next = std::min(next, retires[next_retire].first);
    }
    ASF_CHECK(next > now);

    {
      obs::ScopedPhase obs_phase(options_.base.obs.profiler,
                                 obs::Phase::kSpeculate);
      SpeculateEpoch(now, next);
    }
    const auto replay_start = std::chrono::steady_clock::now();
    {
      obs::ScopedPhase obs_phase(options_.base.obs.profiler,
                                 obs::Phase::kReplay);
      ReplayEpoch(now, next);
    }
    replay_seconds_ +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      replay_start)
            .count();
    now = next;
  }
  // Horizon: replay events scheduled at exactly t = duration (the final
  // flush ran them in SpeculateEpoch's last round since to == duration),
  // drain samples and deliveries landing at the horizon itself, count the
  // messages still in flight, then close every live slot's books, exactly
  // like the serial run loop. Deliveries at the horizon can still fan
  // out, so the executors are released only after the drain.
  const auto drain_start = std::chrono::steady_clock::now();
  obs_drain_snapshots(duration);
  {
    obs::ScopedPhase obs_phase(options_.base.obs.profiler,
                               obs::Phase::kReplay);
    DrainDeliveries(duration, kInf);
  }
  CloseReplayTasks();
  replay_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    drain_start)
          .count();
  net_->Finalize(duration);

  for (auto& slot : slots_) {
    if (!slot->live) continue;
    FlushAnswerSamples(*slot, updates_generated_);
    slot->stats.reinits = slot->protocol->reinit_count();
    slot->stats.retired_at = duration;
  }
  if (obs_reg != nullptr) obs_reg->ClearGauges();
  wall_seconds_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start_)
          .count();
}

const QueryRunStats& ShardedSimulationCore::query_stats(std::size_t i) const {
  ASF_CHECK(i < slots_.size());
  engine_internal::EnsureStatsResident(spiller_.get(), *slots_[i]);
  return slots_[i]->stats;
}

SpillTelemetry ShardedSimulationCore::spill_telemetry() const {
  return spiller_ ? spiller_->Telemetry() : SpillTelemetry();
}

DispatchStats ShardedSimulationCore::dispatch_stats() const {
  DispatchStats stats;
  for (const FilterArena* arena : arena_ptrs_) {
    stats += arena->dispatch_stats();
  }
  return stats;
}

}  // namespace asf
