#include "engine/config.h"

namespace asf {

std::string_view ProtocolKindName(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kNoFilter:
      return "NoFilter";
    case ProtocolKind::kZtNrp:
      return "ZT-NRP";
    case ProtocolKind::kFtNrp:
      return "FT-NRP";
    case ProtocolKind::kRtp:
      return "RTP";
    case ProtocolKind::kZtRp:
      return "ZT-RP";
    case ProtocolKind::kFtRp:
      return "FT-RP";
  }
  return "unknown";
}

RangeQuery QuerySpec::MakeRange() const {
  ASF_CHECK_MSG(type == Type::kRange, "query spec is not a range query");
  return RangeQuery(range_lo, range_hi);
}

RankQuery QuerySpec::MakeRank() const {
  ASF_CHECK_MSG(type == Type::kRank, "query spec is not a rank query");
  switch (rank_kind) {
    case RankKind::kNearest:
      return RankQuery::NearestNeighbors(k, query_point);
    case RankKind::kMax:
      return RankQuery::TopK(k);
    case RankKind::kMin:
      return RankQuery::BottomK(k);
  }
  ASF_CHECK(false);
  return RankQuery::TopK(k);
}

Status QuerySpec::Validate() const {
  switch (type) {
    case Type::kRange:
      if (!(range_lo <= range_hi)) {
        return Status::InvalidArgument("range query needs lo <= hi");
      }
      return Status::OK();
    case Type::kRank:
      if (k == 0) return Status::InvalidArgument("rank query needs k > 0");
      if (rank_kind == RankKind::kNearest &&
          !(query_point == query_point && query_point != kInf &&
            query_point != -kInf)) {
        return Status::InvalidArgument("k-NN query point must be finite");
      }
      return Status::OK();
  }
  return Status::InvalidArgument("unknown query type");
}

Status SourceSpec::Validate() const {
  switch (type) {
    case Type::kRandomWalk:
      return walk.Validate();
    case Type::kTrace:
      if (trace == nullptr) {
        return Status::InvalidArgument("trace source needs a trace");
      }
      return trace->Validate();
    case Type::kCustom:
      if (custom == nullptr) {
        return Status::InvalidArgument("custom source needs a stream set");
      }
      if (custom->size() == 0) {
        return Status::InvalidArgument("custom source has no streams");
      }
      return Status::OK();
  }
  return Status::InvalidArgument("unknown source type");
}

Status SystemConfig::Validate() const {
  ASF_RETURN_IF_ERROR(source.Validate());
  ASF_RETURN_IF_ERROR(query.Validate());
  if (duration <= 0) return Status::InvalidArgument("duration must be > 0");
  if (query_start < 0 || query_start >= duration) {
    return Status::InvalidArgument("query_start must lie in [0, duration)");
  }
  if (oracle.sample_interval < 0) {
    return Status::InvalidArgument("oracle sample_interval must be >= 0");
  }

  const bool is_range = query.type == QuerySpec::Type::kRange;
  switch (protocol) {
    case ProtocolKind::kNoFilter:
      break;  // supports both query classes
    case ProtocolKind::kZtNrp:
    case ProtocolKind::kFtNrp:
      if (!is_range) {
        return Status::InvalidArgument(
            "ZT-NRP/FT-NRP handle range (non-rank-based) queries only");
      }
      break;
    case ProtocolKind::kRtp:
    case ProtocolKind::kZtRp:
    case ProtocolKind::kFtRp:
      if (is_range) {
        return Status::InvalidArgument(
            "RTP/ZT-RP/FT-RP handle rank-based queries only");
      }
      break;
  }
  if (query.type == QuerySpec::Type::kRank &&
      query.k > source.NumStreams()) {
    return Status::InvalidArgument(
        "rank requirement k exceeds the stream population");
  }
  if (protocol == ProtocolKind::kFtNrp || protocol == ProtocolKind::kFtRp) {
    ASF_RETURN_IF_ERROR(fraction.Validate());
  }
  return Status::OK();
}

}  // namespace asf
