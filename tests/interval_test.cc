#include "common/interval.h"

#include <gtest/gtest.h>

namespace asf {
namespace {

TEST(IntervalTest, DefaultIsEmpty) {
  Interval iv;
  EXPECT_TRUE(iv.empty());
  EXPECT_FALSE(iv.all());
  EXPECT_FALSE(iv.Contains(0.0));
  EXPECT_FALSE(iv.Contains(kInf));
}

TEST(IntervalTest, ClosedMembership) {
  Interval iv(400, 600);
  EXPECT_TRUE(iv.Contains(400));   // closed at both ends (paper §3.1)
  EXPECT_TRUE(iv.Contains(600));
  EXPECT_TRUE(iv.Contains(500));
  EXPECT_FALSE(iv.Contains(399.999));
  EXPECT_FALSE(iv.Contains(600.001));
}

TEST(IntervalTest, SinglePointInterval) {
  Interval iv(5, 5);
  EXPECT_FALSE(iv.empty());
  EXPECT_TRUE(iv.Contains(5));
  EXPECT_FALSE(iv.Contains(5.0001));
  EXPECT_EQ(iv.Width(), 0);
}

TEST(IntervalTest, InvertedEndpointsCanonicalizeToNever) {
  Interval iv(10, 5);
  EXPECT_TRUE(iv.empty());
  EXPECT_EQ(iv, Interval::Never());
}

TEST(IntervalTest, AlwaysContainsEverything) {
  Interval iv = Interval::Always();
  EXPECT_TRUE(iv.all());
  EXPECT_FALSE(iv.empty());
  EXPECT_TRUE(iv.Contains(0));
  EXPECT_TRUE(iv.Contains(-1e308));
  EXPECT_TRUE(iv.Contains(1e308));
  EXPECT_TRUE(iv.Contains(kInf));
  EXPECT_TRUE(iv.Contains(-kInf));
}

TEST(IntervalTest, NeverIsTheFalseNegativeFilterForm) {
  // [inf, inf] — the paper's false-negative filter: no finite value inside.
  Interval iv = Interval::Never();
  EXPECT_EQ(iv.lo(), kInf);
  EXPECT_EQ(iv.hi(), kInf);
  EXPECT_FALSE(iv.Contains(1e308));
}

TEST(IntervalTest, HalfInfiniteIntervals) {
  // Top-k bound: [threshold, +inf).
  Interval top(100, kInf);
  EXPECT_TRUE(top.Contains(100));
  EXPECT_TRUE(top.Contains(1e12));
  EXPECT_FALSE(top.Contains(99));
  EXPECT_FALSE(top.empty());
  EXPECT_FALSE(top.all());

  Interval bottom(-kInf, 100);
  EXPECT_TRUE(bottom.Contains(-1e12));
  EXPECT_FALSE(bottom.Contains(101));
}

TEST(IntervalTest, Ball) {
  Interval iv = Interval::Ball(500, 50);
  EXPECT_EQ(iv.lo(), 450);
  EXPECT_EQ(iv.hi(), 550);
  EXPECT_TRUE(Interval::Ball(0, -1).empty());
  EXPECT_FALSE(Interval::Ball(0, 0).empty());  // degenerate point ball
}

TEST(IntervalTest, ContainsInterval) {
  Interval outer(0, 100);
  EXPECT_TRUE(outer.ContainsInterval(Interval(10, 90)));
  EXPECT_TRUE(outer.ContainsInterval(Interval(0, 100)));
  EXPECT_FALSE(outer.ContainsInterval(Interval(-1, 50)));
  EXPECT_TRUE(outer.ContainsInterval(Interval::Never()));
  EXPECT_FALSE(Interval::Never().ContainsInterval(outer));
  EXPECT_TRUE(Interval::Always().ContainsInterval(outer));
}

TEST(IntervalTest, Intersect) {
  EXPECT_EQ(Interval(0, 10).Intersect(Interval(5, 20)), Interval(5, 10));
  EXPECT_TRUE(Interval(0, 10).Intersect(Interval(11, 20)).empty());
  EXPECT_EQ(Interval(0, 10).Intersect(Interval::Always()), Interval(0, 10));
  EXPECT_TRUE(Interval(0, 10).Intersect(Interval::Never()).empty());
  // Touching endpoints intersect at a point.
  EXPECT_EQ(Interval(0, 10).Intersect(Interval(10, 20)), Interval(10, 10));
}

TEST(IntervalTest, Width) {
  EXPECT_EQ(Interval(400, 600).Width(), 200);
  EXPECT_EQ(Interval::Never().Width(), 0);
  EXPECT_EQ(Interval::Always().Width(), kInf);
  EXPECT_EQ(Interval(0, kInf).Width(), kInf);
}

TEST(IntervalTest, DistanceToBoundary) {
  Interval iv(400, 600);
  EXPECT_EQ(iv.DistanceToBoundary(500), 100);  // middle
  EXPECT_EQ(iv.DistanceToBoundary(410), 10);   // near lower edge, inside
  EXPECT_EQ(iv.DistanceToBoundary(390), 10);   // near lower edge, outside
  EXPECT_EQ(iv.DistanceToBoundary(650), 50);   // above, outside
  EXPECT_EQ(iv.DistanceToBoundary(400), 0);    // on the edge
}

TEST(IntervalTest, DistanceToBoundaryHalfInfinite) {
  // Only the finite edge is a reachable boundary.
  Interval top(100, kInf);
  EXPECT_EQ(top.DistanceToBoundary(150), 50);
  EXPECT_EQ(top.DistanceToBoundary(20), 80);
  EXPECT_EQ(Interval::Always().DistanceToBoundary(0), kInf);
  EXPECT_EQ(Interval::Never().DistanceToBoundary(0), kInf);
}

TEST(IntervalTest, EqualityTreatsAllEmptyAsEqual) {
  EXPECT_EQ(Interval(10, 5), Interval(100, 1));
  EXPECT_EQ(Interval(10, 5), Interval::Never());
  EXPECT_NE(Interval(0, 1), Interval(0, 2));
  EXPECT_NE(Interval(0, 1), Interval::Never());
}

TEST(IntervalTest, ToString) {
  EXPECT_EQ(Interval(400, 600).ToString(), "[400, 600]");
  EXPECT_EQ(Interval::Always().ToString(), "[-inf, inf]");
  EXPECT_EQ(Interval::Never().ToString(), "[empty]");
}

}  // namespace
}  // namespace asf
