/// Ablation — broadcast cost model (DESIGN.md §3, note 3).
///
/// The paper counts "maintenance messages" without pinning down whether a
/// constraint deployed to all n streams costs n messages (point-to-point
/// network) or one (broadcast medium, e.g. the sensor-network radio of
/// §5.1.1's battery discussion). The protocols most sensitive to the
/// choice are the ones that redeploy bounds: ZT-RP (every crossing) and
/// RTP (every bound change). FT-NRP barely re-deploys, so it is nearly
/// model-independent — which is itself evidence for the robustness of the
/// paper's FT-NRP conclusions.

#include "bench_common.h"

namespace asf {
namespace {

void Run() {
  bench::PrintBanner(
      "Ablation: broadcast cost model (per-recipient vs single-message)",
      "(methodology) the paper's metric is ambiguous about deploy-all "
      "costs; this bounds how much the reading matters per protocol",
      "ZT-RP/RTP shrink dramatically under the broadcast model; FT-NRP "
      "barely moves");

  struct Case {
    const char* label;
    ProtocolKind protocol;
    QuerySpec query;
    double eps;
    std::size_t r;
  };
  const Case cases[] = {
      {"ZT-NRP", ProtocolKind::kZtNrp, QuerySpec::Range(400, 600), 0, 0},
      {"FT-NRP eps=0.3", ProtocolKind::kFtNrp, QuerySpec::Range(400, 600),
       0.3, 0},
      {"RTP r=5", ProtocolKind::kRtp, QuerySpec::Knn(20, 500), 0, 5},
      {"ZT-RP", ProtocolKind::kZtRp, QuerySpec::Knn(20, 500), 0, 0},
      {"FT-RP eps=0.3", ProtocolKind::kFtRp, QuerySpec::Knn(20, 500), 0.3,
       0},
  };

  std::vector<SystemConfig> configs;
  for (const Case& c : cases) {
    for (int b = 0; b < 2; ++b) {
      SystemConfig config;
      RandomWalkConfig walk;
      walk.num_streams = 1000;
      walk.seed = 67;
      config.source = SourceSpec::Walk(walk);
      config.query = c.query;
      config.protocol = c.protocol;
      config.fraction = {c.eps, c.eps};
      config.rank_r = c.r;
      config.broadcast_counts_as_one = (b == 1);
      config.duration = 300 * bench::Scale();
      configs.push_back(config);
    }
  }
  const std::vector<RunResult> results = bench::MustRunAll(configs);

  TextTable table(
      {"protocol", "per-recipient", "broadcast", "ratio"});
  for (std::size_t i = 0; i < std::size(cases); ++i) {
    const std::uint64_t msgs[2] = {
        results[2 * i].MaintenanceMessages(),
        results[2 * i + 1].MaintenanceMessages()};
    table.AddRow({cases[i].label, bench::Msgs(msgs[0]), bench::Msgs(msgs[1]),
                  Fmt("%.2f", msgs[0] == 0
                                  ? 1.0
                                  : static_cast<double>(msgs[1]) /
                                        static_cast<double>(msgs[0]))});
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace
}  // namespace asf

int main() {
  asf::Run();
  return 0;
}
