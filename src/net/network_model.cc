#include "net/network_model.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "net/fault_pipeline.h"

namespace asf {

std::string_view NetKindName(NetConfig::Kind kind) {
  switch (kind) {
    case NetConfig::Kind::kInstant:
      return "instant";
    case NetConfig::Kind::kFixedLatency:
      return "latency";
    case NetConfig::Kind::kBatched:
      return "batch";
    case NetConfig::Kind::kBoundedBandwidth:
      return "bw";
  }
  return "unknown";
}

Status NetConfig::Validate() const {
  const auto bad = [](double x) { return std::isnan(x) || x < 0; };
  if (bad(latency) || std::isinf(latency)) {
    return Status::InvalidArgument("net latency must be finite and >= 0");
  }
  if (bad(jitter) || std::isinf(jitter)) {
    return Status::InvalidArgument("net jitter must be finite and >= 0");
  }
  if (bad(delta) || std::isinf(delta)) {
    return Status::InvalidArgument("net batch delta must be finite and >= 0");
  }
  if (kind == Kind::kBoundedBandwidth && !(rate > 0)) {
    return Status::InvalidArgument("net bandwidth rate must be > 0");
  }
  if (std::isnan(loss) || loss < 0 || loss > 1) {
    return Status::InvalidArgument("net loss probability must be in [0, 1]");
  }
  if (!(loss_burst >= 1) || std::isinf(loss_burst)) {
    return Status::InvalidArgument("net loss burst must be finite and >= 1");
  }
  if (loss_burst > 1 && loss > 0) {
    // The Gilbert-Elliott chain needs a valid good->bad probability
    // loss / (burst * (1 - loss)), which requires loss <= burst/(burst+1).
    if (loss >= 1 || loss / (loss_burst * (1.0 - loss)) > 1.0) {
      return Status::InvalidArgument(
          "net loss/burst combination is infeasible: burst b needs "
          "loss <= b/(b+1)");
    }
  }
  for (std::size_t i = 0; i < partition.size(); ++i) {
    if (std::isnan(partition[i]) || std::isinf(partition[i]) ||
        partition[i] < 0 || (i > 0 && partition[i] <= partition[i - 1])) {
      return Status::InvalidArgument(
          "net partition boundaries must be finite, >= 0, and strictly "
          "increasing");
    }
  }
  if (std::isnan(rto) || std::isinf(rto) || rto < 0) {
    return Status::InvalidArgument("net rto must be finite and >= 0");
  }
  if (std::isnan(rto_max) || std::isinf(rto_max) || rto_max < 0) {
    return Status::InvalidArgument("net rto cap must be finite and >= 0");
  }
  if (rto_max > 0 && rto_max < RtoInitial()) {
    return Status::InvalidArgument(
        "net rto cap must be >= the initial timeout");
  }
  if (bad(comp) || std::isinf(comp)) {
    return Status::InvalidArgument(
        "net compensation margin must be finite and >= 0");
  }
  return Status::OK();
}

bool NetConfig::DelaysDelivery() const {
  if (HasFaults() || comp > 0) return true;
  switch (kind) {
    case Kind::kInstant:
      return false;
    case Kind::kFixedLatency:
      return latency > 0 || jitter > 0;
    case Kind::kBatched:
      return delta > 0;
    case Kind::kBoundedBandwidth:
      // Infinite rate means zero service time: instant semantics.
      return std::isfinite(rate);
  }
  return false;
}

double NetConfig::RtoInitial() const {
  if (rto > 0) return rto;
  return std::max(1.0, 4.0 * (latency + jitter));
}

double NetConfig::RtoMax() const {
  if (rto_max > 0) return rto_max;
  return 64.0 * RtoInitial();
}

std::string NetConfig::ToString() const {
  char buf[64];
  std::string out;
  switch (kind) {
    case Kind::kInstant:
      out = "instant";
      break;
    case Kind::kFixedLatency:
      if (jitter > 0) {
        std::snprintf(buf, sizeof(buf), "latency:%g:%g", latency, jitter);
      } else {
        std::snprintf(buf, sizeof(buf), "latency:%g", latency);
      }
      out = buf;
      break;
    case Kind::kBatched:
      std::snprintf(buf, sizeof(buf), "batch:%g", delta);
      out = buf;
      break;
    case Kind::kBoundedBandwidth:
      std::snprintf(buf, sizeof(buf), "bw:%g", rate);
      out = buf;
      break;
  }
  std::vector<std::string> stages;
  if (loss > 0) {
    if (loss_burst > 1) {
      std::snprintf(buf, sizeof(buf), "loss:%g:%g", loss, loss_burst);
    } else {
      std::snprintf(buf, sizeof(buf), "loss:%g", loss);
    }
    stages.push_back(buf);
  }
  if (reorder > 0) {
    std::snprintf(buf, sizeof(buf), "reorder:%u", reorder);
    stages.push_back(buf);
  }
  if (!partition.empty()) {
    std::string p = "partition:";
    for (std::size_t i = 0; i < partition.size(); ++i) {
      std::snprintf(buf, sizeof(buf), "%s%g", i ? "," : "", partition[i]);
      p += buf;
    }
    stages.push_back(std::move(p));
  }
  if (rto > 0) {
    if (rto_max > 0) {
      std::snprintf(buf, sizeof(buf), "rto:%g:%g", rto, rto_max);
    } else {
      std::snprintf(buf, sizeof(buf), "rto:%g", rto);
    }
    stages.push_back(buf);
  } else if (!rto_adaptive) {
    if (rto_max > 0) {
      std::snprintf(buf, sizeof(buf), "rto:fixed:%g", rto_max);
    } else {
      std::snprintf(buf, sizeof(buf), "rto:fixed");
    }
    stages.push_back(buf);
  } else if (rto_max > 0) {
    // Adaptive is the default; only an explicit cap needs a stage.
    std::snprintf(buf, sizeof(buf), "rto:adaptive:%g", rto_max);
    stages.push_back(buf);
  }
  if (comp > 0) {
    std::snprintf(buf, sizeof(buf), "comp:%g", comp);
    stages.push_back(buf);
  }
  if (!reconcile) stages.push_back("norecon");
  if (stages.empty()) return out;
  // An instant base is implied when fault stages are present, so the
  // canonical form round-trips ("loss:0.1" stays "loss:0.1").
  std::string joined = kind == Kind::kInstant ? "" : out;
  for (const std::string& s : stages) {
    if (!joined.empty()) joined += '+';
    joined += s;
  }
  return joined;
}

namespace {

/// Splits `s` on `sep` (keeping empty pieces, so "a++b" yields an empty
/// middle stage the caller can reject with a useful message).
std::vector<std::string> SplitOn(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t at = s.find(sep, pos);
    if (at == std::string::npos) {
      parts.push_back(s.substr(pos));
      break;
    }
    parts.push_back(s.substr(pos, at - pos));
    pos = at + 1;
  }
  return parts;
}

}  // namespace

Result<NetConfig> ParseNetSpec(const std::string& spec) {
  NetConfig config;
  bool have_base = false;
  bool have_loss = false, have_reorder = false, have_partition = false;
  bool have_rto = false, have_comp = false, have_norecon = false;

  const auto number = [](const std::string& stage, const std::string& token,
                         const char* what) -> Result<double> {
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (token.empty() || end == token.c_str() || *end != '\0') {
      return Status::InvalidArgument("--net stage '" + stage + "': " + what +
                                     " is not a number: '" + token + "'");
    }
    return v;
  };

  for (const std::string& stage : SplitOn(spec, '+')) {
    if (stage.empty()) {
      return Status::InvalidArgument("--net spec has an empty stage: '" +
                                     spec + "'");
    }
    const std::vector<std::string> parts = SplitOn(stage, ':');
    const std::string& head = parts[0];
    const std::size_t nparams = parts.size() - 1;

    const auto base_stage = [&](NetConfig::Kind kind) -> Status {
      if (have_base) {
        return Status::InvalidArgument(
            "--net allows at most one base delivery model, got a second: '" +
            stage + "'");
      }
      have_base = true;
      config.kind = kind;
      return Status::OK();
    };

    if (head == "instant") {
      ASF_RETURN_IF_ERROR(base_stage(NetConfig::Kind::kInstant));
      if (nparams != 0) {
        return Status::InvalidArgument("--net=instant takes no parameters");
      }
    } else if (head == "latency") {
      ASF_RETURN_IF_ERROR(base_stage(NetConfig::Kind::kFixedLatency));
      if (nparams < 1 || nparams > 2) {
        return Status::InvalidArgument(
            "--net=latency expects latency:<delay>[:<jitter>]");
      }
      ASF_ASSIGN_OR_RETURN(config.latency, number(stage, parts[1], "delay"));
      if (nparams == 2) {
        ASF_ASSIGN_OR_RETURN(config.jitter, number(stage, parts[2], "jitter"));
      }
    } else if (head == "batch") {
      ASF_RETURN_IF_ERROR(base_stage(NetConfig::Kind::kBatched));
      if (nparams != 1) {
        return Status::InvalidArgument("--net=batch expects batch:<delta>");
      }
      ASF_ASSIGN_OR_RETURN(config.delta, number(stage, parts[1], "delta"));
    } else if (head == "bw") {
      ASF_RETURN_IF_ERROR(base_stage(NetConfig::Kind::kBoundedBandwidth));
      if (nparams != 1) {
        return Status::InvalidArgument("--net=bw expects bw:<rate>");
      }
      ASF_ASSIGN_OR_RETURN(config.rate, number(stage, parts[1], "rate"));
    } else if (head == "loss") {
      if (have_loss) {
        return Status::InvalidArgument("duplicate --net stage: loss");
      }
      have_loss = true;
      if (nparams < 1 || nparams > 2) {
        return Status::InvalidArgument(
            "--net loss expects loss:<probability>[:<burst>]");
      }
      ASF_ASSIGN_OR_RETURN(config.loss, number(stage, parts[1], "probability"));
      if (nparams == 2) {
        ASF_ASSIGN_OR_RETURN(config.loss_burst,
                             number(stage, parts[2], "burst length"));
      }
    } else if (head == "reorder") {
      if (have_reorder) {
        return Status::InvalidArgument("duplicate --net stage: reorder");
      }
      have_reorder = true;
      if (nparams != 1) {
        return Status::InvalidArgument(
            "--net reorder expects reorder:<max-displacement>");
      }
      ASF_ASSIGN_OR_RETURN(const double k,
                           number(stage, parts[1], "max displacement"));
      if (k < 0 || k != std::floor(k) || k > 1e6) {
        return Status::InvalidArgument(
            "--net reorder: max displacement must be an integer in "
            "[0, 1000000], got '" +
            parts[1] + "'");
      }
      config.reorder = static_cast<std::uint32_t>(k);
    } else if (head == "partition") {
      if (have_partition) {
        return Status::InvalidArgument("duplicate --net stage: partition");
      }
      have_partition = true;
      if (nparams != 1 || parts[1].empty()) {
        return Status::InvalidArgument(
            "--net partition expects partition:<t0>,<t1>[,...]");
      }
      for (const std::string& tok : SplitOn(parts[1], ',')) {
        ASF_ASSIGN_OR_RETURN(const double t, number(stage, tok, "boundary"));
        config.partition.push_back(t);
      }
    } else if (head == "rto") {
      if (have_rto) {
        return Status::InvalidArgument("duplicate --net stage: rto");
      }
      have_rto = true;
      if (nparams < 1 || nparams > 2) {
        return Status::InvalidArgument(
            "--net rto expects rto:<timeout>[:<max>], rto:adaptive[:<max>] "
            "or rto:fixed[:<max>]");
      }
      if (parts[1] == "adaptive" || parts[1] == "fixed") {
        config.rto_adaptive = parts[1] == "adaptive";
      } else {
        ASF_ASSIGN_OR_RETURN(config.rto, number(stage, parts[1], "timeout"));
        if (!(config.rto > 0)) {
          return Status::InvalidArgument("--net rto: timeout must be > 0");
        }
      }
      if (nparams == 2) {
        ASF_ASSIGN_OR_RETURN(config.rto_max, number(stage, parts[2], "cap"));
      }
    } else if (head == "comp") {
      if (have_comp) {
        return Status::InvalidArgument("duplicate --net stage: comp");
      }
      have_comp = true;
      if (nparams != 1) {
        return Status::InvalidArgument("--net comp expects comp:<margin>");
      }
      ASF_ASSIGN_OR_RETURN(config.comp, number(stage, parts[1], "margin"));
    } else if (head == "norecon") {
      if (have_norecon) {
        return Status::InvalidArgument("duplicate --net stage: norecon");
      }
      have_norecon = true;
      if (nparams != 0) {
        return Status::InvalidArgument("--net norecon takes no parameters");
      }
      config.reconcile = false;
    } else {
      return Status::InvalidArgument(
          "unknown --net stage: '" + head +
          "' (expected instant|latency|batch|bw|loss|reorder|partition|rto|"
          "comp|norecon)");
    }
  }
  ASF_RETURN_IF_ERROR(config.Validate());
  return config;
}

std::string NetStats::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "crossings=%llu wire=%llu payloads=%llu per_flush=%.2f "
      "deploys=%llu rpcs=%llu dropped=%llu in_flight_end=%llu "
      "delay_mean=%.3g delay_max=%.3g",
      static_cast<unsigned long long>(crossings),
      static_cast<unsigned long long>(update_messages),
      static_cast<unsigned long long>(update_payloads), MessagesPerFlush(),
      static_cast<unsigned long long>(deploy_messages),
      static_cast<unsigned long long>(control_rpcs),
      static_cast<unsigned long long>(dropped_retired),
      static_cast<unsigned long long>(in_flight_at_end), delay.mean(),
      delay.max());
  std::string out = buf;
  if (dropped_loss || dropped_partition || suppressed_stale ||
      deploy_retransmits || deploy_dropped || probe_failovers ||
      reconcile_exchanges) {
    std::snprintf(
        buf, sizeof(buf),
        " lost=%llu partitioned=%llu stale=%llu deploy_retx=%llu "
        "deploy_lost=%llu probe_retx=%llu probe_fail=%llu recon=%llu",
        static_cast<unsigned long long>(dropped_loss),
        static_cast<unsigned long long>(dropped_partition),
        static_cast<unsigned long long>(suppressed_stale),
        static_cast<unsigned long long>(deploy_retransmits),
        static_cast<unsigned long long>(deploy_dropped),
        static_cast<unsigned long long>(probe_retransmits),
        static_cast<unsigned long long>(probe_failovers),
        static_cast<unsigned long long>(reconcile_exchanges));
    out += buf;
  }
  return out;
}

void NetworkModel::Bind(Scheduler* scheduler, UpdateSink on_update,
                        DeploySink on_deploy) {
  ASF_CHECK_MSG(scheduler_ == nullptr, "NetworkModel bound twice");
  ASF_CHECK(scheduler != nullptr);
  ASF_CHECK(on_update != nullptr);
  ASF_CHECK(on_deploy != nullptr);
  scheduler_ = scheduler;
  update_sink_ = std::move(on_update);
  deploy_sink_ = std::move(on_deploy);
  OnBind();
}

FilterConstraint CompensateConstraint(const FilterConstraint& constraint,
                                      double margin) {
  if (margin <= 0 || !constraint.has_filter() || constraint.IsSilent()) {
    return constraint;
  }
  const Interval& iv = constraint.interval();
  const Value lo = iv.lo();
  const Value hi = iv.hi();
  const Value lo2 = std::isinf(lo) ? lo : lo + margin;
  const Value hi2 = std::isinf(hi) ? hi : hi - margin;
  if (lo2 > hi2) {
    // Guard bands crossed: the compensated filter collapses to the
    // original midpoint, so any movement reports (maximally cautious).
    const Value mid = (lo + hi) / 2;
    return FilterConstraint::Range(Interval(mid, mid));
  }
  return FilterConstraint::Range(Interval(lo2, hi2));
}

namespace {

/// Shared zero-delay paths. Models whose parameters degenerate to instant
/// semantics (zero latency, zero Δ, infinite rate) must take exactly these
/// paths so their runs stay byte-identical to InstantNet.
class InlineDeliveryBase : public NetworkModel {
 protected:
  /// Delivers one wire message inside the producing event: no scheduler,
  /// no heap traffic in steady state (the payload scratch is reused), no
  /// delay samples (staleness is identically zero).
  void DeliverUpdateInline(StreamId id, Value v,
                           const std::vector<std::size_t>& slots,
                           SimTime now) {
    scratch_.clear();
    for (const std::size_t slot : slots) {
      scratch_.push_back(Payload{slot, v, now, 1, 0});
    }
    EmitUpdate(id, scratch_, now, /*sample_delay=*/false);
  }

  void DeliverDeployInline(std::size_t slot, StreamId id,
                           const FilterConstraint& constraint, SimTime now) {
    ++stats_.deploy_messages;
    deploy_sink_(slot, id, constraint, now);
  }

  /// Enqueues one wire message of `payloads` from stream `id` for
  /// delivery at `at` — the single copy of the delayed-delivery
  /// accounting (in-flight tracking, wire/payload/delay stats, sink
  /// call) shared by every delaying model.
  void ScheduleWireMessage(StreamId id, std::vector<Payload> payloads,
                           SimTime at) {
    for (const Payload& p : payloads) AddInFlight(p.slot);
    ++pending_wire_;
    pending_crossings_ += payloads.size();
    scheduler_->ScheduleAt(
        at, [this, id, at, payloads = std::move(payloads)]() mutable {
          --pending_wire_;
          OnWireDelivered(id);
          for (const Payload& p : payloads) {
            SubInFlight(p.slot);
            pending_crossings_ -= p.crossings;
          }
          EmitUpdate(id, payloads, at, /*sample_delay=*/true);
        });
  }

  /// Model hook run when a scheduled wire message leaves the network
  /// (before the sink), e.g. to release link-queue occupancy.
  virtual void OnWireDelivered(StreamId id) { (void)id; }

 private:
  std::vector<Payload> scratch_;
};

/// The paper's semantics: every message arrives inside the event that
/// produced it.
class InstantNet final : public InlineDeliveryBase {
 public:
  void SendUpdate(StreamId id, Value v, const std::vector<std::size_t>& slots,
                  SimTime now) override {
    stats_.crossings += slots.size();
    DeliverUpdateInline(id, v, slots, now);
  }

  void SendDeploy(std::size_t slot, StreamId id,
                  const FilterConstraint& constraint, SimTime now) override {
    DeliverDeployInline(slot, id, constraint, now);
  }
};

/// Constant per-link one-way delay plus uniform jitter, both directions.
/// Delivery order is FIFO per (link, direction): a jittered later message
/// never overtakes an earlier one (its delivery clamps to the link's last
/// scheduled arrival).
class FixedLatencyNet final : public InlineDeliveryBase {
 public:
  FixedLatencyNet(double latency, double jitter, std::uint64_t seed)
      : latency_(latency), jitter_(jitter),
        delayed_(latency > 0 || jitter > 0), rng_(seed) {}

  void SendUpdate(StreamId id, Value v, const std::vector<std::size_t>& slots,
                  SimTime now) override {
    stats_.crossings += slots.size();
    if (!delayed_) {
      DeliverUpdateInline(id, v, slots, now);
      return;
    }
    std::vector<Payload> payloads;
    payloads.reserve(slots.size());
    for (const std::size_t slot : slots) {
      payloads.push_back(Payload{slot, v, now, 1, 0});
    }
    ScheduleWireMessage(id, std::move(payloads),
                        NextDelivery(&uplink_last_, id, now));
  }

  void SendDeploy(std::size_t slot, StreamId id,
                  const FilterConstraint& constraint, SimTime now) override {
    if (!delayed_) {
      DeliverDeployInline(slot, id, constraint, now);
      return;
    }
    const SimTime at = NextDelivery(&downlink_last_, id, now);
    ++pending_wire_;
    scheduler_->ScheduleAt(at, [this, slot, id, constraint, at] {
      --pending_wire_;
      ++stats_.deploy_messages;
      deploy_sink_(slot, id, constraint, at);
    });
  }

 private:
  SimTime NextDelivery(std::vector<SimTime>* last, StreamId id, SimTime now) {
    SimTime at = now + latency_;
    if (jitter_ > 0) at += rng_.Uniform(0, jitter_);
    if (id >= last->size()) last->resize(id + 1, 0);
    if (at < (*last)[id]) at = (*last)[id];  // FIFO per link & direction
    (*last)[id] = at;
    return at;
  }

  const double latency_;
  const double jitter_;
  const bool delayed_;
  Rng rng_;
  std::vector<SimTime> uplink_last_;
  std::vector<SimTime> downlink_last_;
};

/// Δ-batched delivery: each source coalesces its filter crossings and
/// flushes one wire message at the next point of the global Δ grid. A
/// coalesced payload carries the query's *latest* crossing value; the
/// crossings counter records how many it stands for (NetStats::
/// MessagesPerFlush is the batching win). Server→source deploys are
/// control plane and deliver instantly.
class BatchedNet final : public InlineDeliveryBase {
 public:
  explicit BatchedNet(double delta) : delta_(delta), delayed_(delta > 0) {}

  void SendUpdate(StreamId id, Value v, const std::vector<std::size_t>& slots,
                  SimTime now) override {
    stats_.crossings += slots.size();
    if (!delayed_) {
      DeliverUpdateInline(id, v, slots, now);
      return;
    }
    if (id >= links_.size()) links_.resize(id + 1);
    Link& link = links_[id];
    pending_crossings_ += slots.size();
    for (const std::size_t slot : slots) {
      // Pending lists stay sorted by slot and are tiny (the queries this
      // one source crossed since the last flush), so a linear merge is
      // cheaper than any indexed structure.
      auto it = std::lower_bound(
          link.pending.begin(), link.pending.end(), slot,
          [](const Payload& p, std::size_t s) { return p.slot < s; });
      if (it != link.pending.end() && it->slot == slot) {
        it->value = v;
        it->crossed_at = now;
        ++it->crossings;
      } else {
        link.pending.insert(it, Payload{slot, v, now, 1, 0});
        AddInFlight(slot);
      }
    }
    if (!link.scheduled) {
      link.scheduled = true;
      ++pending_wire_;
      SimTime at = (std::floor(now / delta_) + 1) * delta_;
      if (at <= now) at = now + delta_;  // guard fp rounding at grid points
      scheduler_->ScheduleAt(at, [this, id, at] { Flush(id, at); });
    }
  }

  void SendDeploy(std::size_t slot, StreamId id,
                  const FilterConstraint& constraint, SimTime now) override {
    DeliverDeployInline(slot, id, constraint, now);
  }

 private:
  struct Link {
    std::vector<Payload> pending;  ///< sorted by slot
    bool scheduled = false;
  };

  void Flush(StreamId id, SimTime at) {
    Link& link = links_[id];
    --pending_wire_;
    link.scheduled = false;
    flush_scratch_.clear();
    flush_scratch_.swap(link.pending);
    for (const Payload& p : flush_scratch_) {
      SubInFlight(p.slot);
      pending_crossings_ -= p.crossings;
    }
    EmitUpdate(id, flush_scratch_, at, /*sample_delay=*/true);
  }

  const double delta_;
  const bool delayed_;
  std::vector<Link> links_;
  std::vector<Payload> flush_scratch_;
};

/// Per-source uplink FIFO with a fixed service rate: each wire message
/// occupies the link for 1/rate, so bursts queue behind each other and
/// delivery delay grows with backlog. The downlink (server→source) is
/// uncongested and delivers instantly — the model targets the congested
/// sensor-uplink scenario.
class BoundedBandwidthNet final : public InlineDeliveryBase {
 public:
  explicit BoundedBandwidthNet(double rate)
      : service_time_(1.0 / rate), delayed_(std::isfinite(rate)) {}

  void SendUpdate(StreamId id, Value v, const std::vector<std::size_t>& slots,
                  SimTime now) override {
    stats_.crossings += slots.size();
    if (!delayed_) {
      DeliverUpdateInline(id, v, slots, now);
      return;
    }
    if (id >= next_free_.size()) {
      next_free_.resize(id + 1, 0);
      queued_.resize(id + 1, 0);
    }
    stats_.queue_depth.Add(static_cast<double>(queued_[id]));
    if (obs_sink_ != nullptr) {
      obs_sink_->queue_depth->Add(static_cast<double>(queued_[id]));
    }
    ++queued_[id];
    std::vector<Payload> payloads;
    payloads.reserve(slots.size());
    for (const std::size_t slot : slots) {
      payloads.push_back(Payload{slot, v, now, 1, 0});
    }
    const SimTime at = std::max(now, next_free_[id]) + service_time_;
    next_free_[id] = at;
    ScheduleWireMessage(id, std::move(payloads), at);
  }

  void SendDeploy(std::size_t slot, StreamId id,
                  const FilterConstraint& constraint, SimTime now) override {
    DeliverDeployInline(slot, id, constraint, now);
  }

 private:
  void OnWireDelivered(StreamId id) override { --queued_[id]; }

  const double service_time_;
  const bool delayed_;
  std::vector<SimTime> next_free_;
  std::vector<std::uint32_t> queued_;
};

}  // namespace

std::unique_ptr<NetworkModel> MakeNetworkModel(const NetConfig& config,
                                               std::uint64_t seed) {
  std::unique_ptr<NetworkModel> base;
  switch (config.kind) {
    case NetConfig::Kind::kInstant:
      base = std::make_unique<InstantNet>();
      break;
    case NetConfig::Kind::kFixedLatency:
      // Decorrelated substream: the model's jitter draws never perturb
      // protocol RNG consumption (slots derive their own seeds).
      base = std::make_unique<FixedLatencyNet>(config.latency, config.jitter,
                                               MixSeed(seed, 0x6e657421ULL));
      break;
    case NetConfig::Kind::kBatched:
      base = std::make_unique<BatchedNet>(config.delta);
      break;
    case NetConfig::Kind::kBoundedBandwidth:
      base = std::make_unique<BoundedBandwidthNet>(config.rate);
      break;
  }
  if (base == nullptr) base = std::make_unique<InstantNet>();
  if (!config.HasFaults()) return base;
  // Zero-rate fault configs never reach here (HasFaults is false), so the
  // bare base model keeps its byte-identity guarantees; any active fault
  // stage wraps it in the pipeline, with its own decorrelated substream.
  return std::make_unique<FaultPipeline>(config, std::move(base),
                                         MixSeed(seed, 0x6661756cULL));
}

}  // namespace asf
