#include "storage/buffer_pool.h"

#include <cstring>
#include <limits>

#include "common/check.h"

namespace asf {
namespace storage {

std::string_view ReplacementPolicyName(ReplacementPolicy policy) {
  switch (policy) {
    case ReplacementPolicy::kLru:
      return "lru";
    case ReplacementPolicy::kFifo:
      return "fifo";
  }
  return "?";
}

bool ParseReplacementPolicy(const std::string& name,
                            ReplacementPolicy* policy) {
  if (name == "lru") {
    *policy = ReplacementPolicy::kLru;
    return true;
  }
  if (name == "fifo") {
    *policy = ReplacementPolicy::kFifo;
    return true;
  }
  return false;
}

BufferPool::BufferPool(PageStore* store, std::size_t frames,
                       ReplacementPolicy policy)
    : store_(store), policy_(policy), frames_(frames) {
  ASF_CHECK_MSG(store != nullptr, "buffer pool needs a page store");
  ASF_CHECK_MSG(frames >= 1, "buffer pool needs at least one frame");
  buffer_ = std::make_unique<std::uint8_t[]>(frames * store->page_size());
  stats_.frames = frames;
  stats_.resident_bytes =
      static_cast<std::uint64_t>(frames) * store->page_size();
  resident_.reserve(frames);
}

BufferPool::~BufferPool() {
  // Best effort: the pool may be torn down mid-error, and the store file
  // is scratch for the spiller use case, so a failed flush is not fatal.
  FlushAll();
}

Result<std::size_t> BufferPool::AcquireFrame() {
  std::size_t victim = frames_.size();
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t i = 0; i < frames_.size(); ++i) {
    const Frame& f = frames_[i];
    if (f.page == kNoPage) return i;  // empty frame: no eviction needed
    if (f.pins == 0 && f.stamp < best) {
      best = f.stamp;
      victim = i;
    }
  }
  if (victim == frames_.size()) {
    return Status::FailedPrecondition(
        "buffer pool exhausted: all frames pinned");
  }
  Frame& f = frames_[victim];
  if (f.dirty) {
    ASF_RETURN_IF_ERROR(store_->WritePage(f.page, FrameData(victim)));
    ++stats_.write_backs;
    f.dirty = false;
  }
  resident_.erase(f.page);
  f.page = kNoPage;
  ++stats_.evictions;
  --stats_.resident_pages;
  return victim;
}

Result<std::uint8_t*> BufferPool::Pin(PageId id) {
  ASF_CHECK(id != kNoPage);
  ++clock_;
  auto it = resident_.find(id);
  if (it != resident_.end()) {
    Frame& f = frames_[it->second];
    ++f.pins;
    if (policy_ == ReplacementPolicy::kLru) f.stamp = clock_;
    ++stats_.hits;
    return FrameData(it->second);
  }
  ASF_ASSIGN_OR_RETURN(const std::size_t idx, AcquireFrame());
  Frame& f = frames_[idx];
  ASF_RETURN_IF_ERROR(store_->ReadPage(id, FrameData(idx)));
  f.page = id;
  f.pins = 1;
  f.dirty = false;
  f.stamp = clock_;  // load tick; kLru refreshes it on every later Pin
  resident_.emplace(id, idx);
  ++stats_.misses;
  ++stats_.resident_pages;
  return FrameData(idx);
}

Result<std::uint8_t*> BufferPool::PinNew(PageId* id_out) {
  ++clock_;
  ASF_ASSIGN_OR_RETURN(const std::size_t idx, AcquireFrame());
  const PageId id = store_->Allocate();
  Frame& f = frames_[idx];
  f.page = id;
  f.pins = 1;
  f.dirty = true;  // a fresh page only exists in RAM until written back
  f.stamp = clock_;
  std::memset(FrameData(idx), 0, store_->page_size());
  resident_.emplace(id, idx);
  ++stats_.misses;
  ++stats_.resident_pages;
  *id_out = id;
  return FrameData(idx);
}

void BufferPool::Unpin(PageId id, bool dirty) {
  auto it = resident_.find(id);
  ASF_CHECK_MSG(it != resident_.end(), "unpin of non-resident page");
  Frame& f = frames_[it->second];
  ASF_CHECK_MSG(f.pins > 0, "unpin of unpinned page");
  --f.pins;
  if (dirty) f.dirty = true;
}

void BufferPool::Discard(PageId id) {
  auto it = resident_.find(id);
  if (it != resident_.end()) {
    Frame& f = frames_[it->second];
    ASF_CHECK_MSG(f.pins == 0, "discard of pinned page");
    f.page = kNoPage;
    f.dirty = false;
    resident_.erase(it);
    --stats_.resident_pages;
  }
  store_->Deallocate(id);
}

Status BufferPool::FlushAll() {
  for (std::size_t i = 0; i < frames_.size(); ++i) {
    Frame& f = frames_[i];
    if (f.page != kNoPage && f.dirty) {
      ASF_RETURN_IF_ERROR(store_->WritePage(f.page, FrameData(i)));
      ++stats_.write_backs;
      f.dirty = false;
    }
  }
  return Status::OK();
}

std::uint32_t BufferPool::PinCount(PageId id) const {
  auto it = resident_.find(id);
  return it == resident_.end() ? 0 : frames_[it->second].pins;
}

}  // namespace storage
}  // namespace asf
