/// Figure 13 reproduction — "FT-NRP: Data fluctuation" (§6.2).
///
/// Workload: the synthetic random-walk model with the step deviation σ
/// swept over {20, 40, 60, 80, 100}; range query [400, 600]; tolerance
/// ε+ = ε− swept from 0 to 0.5. The paper: "As σ increases, FT-NRP
/// generates more messages. When a data value changes abruptly, it has a
/// higher chance of violating the filter bound constraint."

#include "bench_common.h"

namespace asf {
namespace {

void Run() {
  bench::PrintBanner(
      "Figure 13: FT-NRP, messages vs tolerance for varying sigma",
      "larger sigma -> more crossings -> more messages at every tolerance; "
      "each curve decreases with tolerance",
      "columns increase top-to-bottom (sigma), rows decrease "
      "left-to-right (eps)");

  const std::vector<double> eps{0.0, 0.1, 0.2, 0.3, 0.4, 0.5};
  std::vector<std::string> header{"sigma"};
  for (double e : eps) header.push_back(Fmt("eps=%.1f", e));
  TextTable table(header);

  const std::vector<double> sigmas{20.0, 40.0, 60.0, 80.0, 100.0};
  std::vector<SystemConfig> configs;
  for (double sigma : sigmas) {
    SystemConfig base;
    RandomWalkConfig walk;
    walk.num_streams = 5000;
    walk.sigma = sigma;
    walk.seed = 19;
    base.source = SourceSpec::Walk(walk);
    base.query = QuerySpec::Range(400, 600);
    base.protocol = ProtocolKind::kFtNrp;
    base.duration = 1000 * bench::Scale();
    for (double e : eps) {
      SystemConfig config = base;
      config.fraction = {e, e};
      configs.push_back(config);
    }
  }
  const std::vector<RunResult> results = bench::MustRunAll(configs);

  for (std::size_t si = 0; si < sigmas.size(); ++si) {
    std::vector<std::string> row{Fmt("%.0f", sigmas[si])};
    for (std::size_t ei = 0; ei < eps.size(); ++ei) {
      row.push_back(bench::Msgs(
          results[si * eps.size() + ei].MaintenanceMessages()));
    }
    table.AddRow(row);
  }
  std::printf("%s\n", table.ToString().c_str());
  bench::MaybeWriteCsv(table, "fig13");
  bench::MaybeWriteBenchJsonFromResults("fig13", results);
}

}  // namespace
}  // namespace asf

int main() {
  asf::Run();
  return 0;
}
