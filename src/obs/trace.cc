#include "obs/trace.h"

#include <cstdio>
#include <cstring>
#include <sstream>

namespace asf {
namespace obs {
namespace {

struct CategoryEntry {
  const char* name;
  std::uint32_t bit;
};

constexpr CategoryEntry kCategories[] = {
    {"update", kCatUpdate},       {"crossing", kCatCrossing},
    {"wire", kCatWire},           {"lifecycle", kCatLifecycle},
    {"epoch", kCatEpoch},         {"index", kCatIndex},
    {"spill", kCatSpill},
};

}  // namespace

const char* TraceEventTypeName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kValueUpdate:
      return "value_update";
    case TraceEventType::kCrossing:
      return "crossing";
    case TraceEventType::kWireSend:
      return "wire_send";
    case TraceEventType::kWireDeliver:
      return "wire_deliver";
    case TraceEventType::kWireDrop:
      return "wire_drop";
    case TraceEventType::kDeploy:
      return "deploy";
    case TraceEventType::kRetire:
      return "retire";
    case TraceEventType::kEpochBarrier:
      return "epoch_barrier";
    case TraceEventType::kIndexRebuild:
      return "index_rebuild";
    case TraceEventType::kSpillEvict:
      return "spill_evict";
    case TraceEventType::kSpillFault:
      return "spill_fault";
    case TraceEventType::kNumTypes:
      break;
  }
  return "unknown";
}

const char* TraceCategoryName(std::uint32_t category_bit) {
  for (const CategoryEntry& entry : kCategories) {
    if (entry.bit == category_bit) return entry.name;
  }
  return "unknown";
}

Result<std::uint32_t> ParseCategoryMask(const std::string& csv) {
  if (csv.empty() || csv == "all") return kCatAll;
  std::uint32_t mask = 0;
  std::stringstream stream(csv);
  std::string name;
  while (std::getline(stream, name, ',')) {
    if (name.empty()) continue;
    if (name == "all") {
      mask |= kCatAll;
      continue;
    }
    bool found = false;
    for (const CategoryEntry& entry : kCategories) {
      if (name == entry.name) {
        mask |= entry.bit;
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument("unknown trace category: " + name);
    }
  }
  if (mask == 0) {
    return Status::InvalidArgument("empty trace category mask: " + csv);
  }
  return mask;
}

std::uint64_t Tracer::total_records() const {
  std::uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->records().size();
  return total;
}

std::uint64_t Tracer::total_dropped() const {
  std::uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->dropped();
  return total;
}

// Binary format (host-endian):
//   char[8]  magic "ASFTRC01"
//   u32      ring_count
//   u32      reserved (0)
//   per ring:
//     u64    record count
//     u64    dropped count
//     TraceRecord[count]   (32 bytes each, verbatim)
Status Tracer::WriteBinary(const std::string& path) const {
  std::FILE* out = std::fopen(path.c_str(), "wb");
  if (out == nullptr) {
    return Status::IoError("cannot open trace file for writing: " + path);
  }
  bool ok = true;
  const char magic[8] = {'A', 'S', 'F', 'T', 'R', 'C', '0', '1'};
  ok = ok && std::fwrite(magic, sizeof(magic), 1, out) == 1;
  const std::uint32_t ring_count = static_cast<std::uint32_t>(rings_.size());
  const std::uint32_t reserved = 0;
  ok = ok && std::fwrite(&ring_count, sizeof(ring_count), 1, out) == 1;
  ok = ok && std::fwrite(&reserved, sizeof(reserved), 1, out) == 1;
  for (const auto& ring : rings_) {
    const std::uint64_t count = ring->records().size();
    const std::uint64_t dropped = ring->dropped();
    ok = ok && std::fwrite(&count, sizeof(count), 1, out) == 1;
    ok = ok && std::fwrite(&dropped, sizeof(dropped), 1, out) == 1;
    if (count > 0) {
      ok = ok && std::fwrite(ring->records().data(), sizeof(TraceRecord),
                             count, out) == count;
    }
  }
  ok = std::fclose(out) == 0 && ok;
  if (!ok) return Status::IoError("short write to trace file: " + path);
  return Status::OK();
}

}  // namespace obs
}  // namespace asf
