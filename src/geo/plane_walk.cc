#include "geo/plane_walk.h"

#include <cmath>

namespace asf {

Status PlaneWalkConfig::Validate() const {
  if (num_streams == 0) {
    return Status::InvalidArgument("num_streams must be > 0");
  }
  if (!(domain_lo < domain_hi)) {
    return Status::InvalidArgument("domain_lo must be < domain_hi");
  }
  if (!(mean_interarrival > 0)) {
    return Status::InvalidArgument("mean_interarrival must be > 0");
  }
  if (sigma < 0) return Status::InvalidArgument("sigma must be >= 0");
  return Status::OK();
}

PlaneWalkStreams::PlaneWalkStreams(const PlaneWalkConfig& config)
    : config_(config), rng_(config.seed) {
  ASF_CHECK_MSG(config.Validate().ok(), "invalid PlaneWalkConfig");
  positions_.resize(config_.num_streams);
  for (Point2& p : positions_) {
    p.x = rng_.Uniform(config_.domain_lo, config_.domain_hi);
    p.y = rng_.Uniform(config_.domain_lo, config_.domain_hi);
  }
}

double PlaneWalkStreams::Reflect(double v) const {
  const double lo = config_.domain_lo;
  const double span = config_.domain_hi - lo;
  double x = std::fmod(v - lo, 2 * span);
  if (x < 0) x += 2 * span;
  if (x > span) x = 2 * span - x;
  return lo + x;
}

void PlaneWalkStreams::StepStream(Scheduler* scheduler, StreamId id,
                                  SimTime horizon) {
  Point2 next = positions_[id];
  next.x = Reflect(next.x + rng_.Normal(0.0, config_.sigma));
  next.y = Reflect(next.y + rng_.Normal(0.0, config_.sigma));
  positions_[id] = next;
  ++moves_;
  if (handler_) handler_(id, next, scheduler->now());
  const SimTime next_time =
      scheduler->now() + rng_.Exponential(config_.mean_interarrival);
  if (next_time <= horizon) {
    scheduler->ScheduleAt(next_time, [this, scheduler, id, horizon] {
      StepStream(scheduler, id, horizon);
    });
  }
}

void PlaneWalkStreams::Start(Scheduler* scheduler, SimTime horizon) {
  ASF_CHECK(scheduler != nullptr);
  for (StreamId id = 0; id < positions_.size(); ++id) {
    const SimTime first =
        scheduler->now() + rng_.Exponential(config_.mean_interarrival);
    if (first <= horizon) {
      scheduler->ScheduleAt(first, [this, scheduler, id, horizon] {
        StepStream(scheduler, id, horizon);
      });
    }
  }
}

}  // namespace asf
