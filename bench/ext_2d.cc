/// Extension bench — multi-dimensional queries (paper §7: "The concepts of
/// our protocols can be extended to multiple dimensions").
///
/// Two 2-D experiments over a population of moving points:
///  1. Rectangle range query via FtRange2d (the plane analogue of FT-NRP):
///     messages vs tolerance, with both placement heuristics.
///  2. k-NN around a fixed post via the distance-stream reduction: the
///     UNMODIFIED 1-D rank protocols (ZT-RP / FT-RP / RTP) run on the
///     derived scalar stream s_i = |p_i − q|, whose interval bound is
///     exactly the disk bound in the plane.

#include "bench_common.h"
#include "geo/distance_streams.h"
#include "geo/range2d.h"
#include "sim/scheduler.h"

namespace asf {
namespace {

void RunRect() {
  std::printf("--- 2-D rectangle range query (FtRange2d) ---\n");
  const Rect zone(300, 700, 300, 700);
  const std::vector<double> eps{0.0, 0.1, 0.2, 0.3, 0.4, 0.5};

  TextTable table({"heuristic", "eps=0.0", "eps=0.1", "eps=0.2", "eps=0.3",
                   "eps=0.4", "eps=0.5", "violations"});
  for (int h = 0; h < 2; ++h) {
    const SelectionHeuristic heuristic =
        (h == 0) ? SelectionHeuristic::kRandom
                 : SelectionHeuristic::kBoundaryNearest;
    std::vector<std::string> row{
        std::string(SelectionHeuristicName(heuristic))};
    std::uint64_t violations = 0;
    std::uint64_t checks = 0;
    for (double e : eps) {
      PlaneWalkConfig config;
      config.num_streams = 2000;
      config.sigma = 20;
      config.seed = 53;
      PlaneWalkStreams walk(config);
      PlaneFilterBank filters(config.num_streams);
      MessageStats stats;
      Rng rng(53);

      FtRange2d::Transport transport;
      transport.probe = [&](StreamId id) {
        filters.at(id).SyncReference(walk.position(id));
        return walk.position(id);
      };
      transport.deploy = [&](StreamId id, const PlaneConstraint& c) {
        filters.Deploy(id, c, walk.position(id));
      };
      FtRange2d proto(config.num_streams, zone, FractionTolerance{e, e},
                      heuristic, &rng, transport, &stats);
      stats.set_phase(MessagePhase::kInit);
      proto.Initialize();
      stats.set_phase(MessagePhase::kMaintenance);

      Scheduler sched;
      const SimTime duration = 1000 * bench::Scale();
      std::uint64_t sampled = 0;
      walk.set_move_handler([&](StreamId id, const Point2& p, SimTime) {
        if (filters.at(id).OnMove(p)) {
          stats.Count(MessageType::kValueUpdate);
          proto.OnUpdate(id, p);
        }
        if (++sampled % 997 == 0) {  // cheap periodic oracle
          ++checks;
          if (!FtRange2d::CountErrors(walk.positions(), zone, proto.answer())
                   .Satisfies(FractionTolerance{e, e})) {
            ++violations;
          }
        }
      });
      walk.Start(&sched, duration);
      sched.RunUntil(duration);
      row.push_back(bench::Msgs(stats.MaintenanceTotal()));
    }
    row.push_back(Fmt("%llu/%llu", (unsigned long long)violations,
                      (unsigned long long)checks));
    table.AddRow(row);
  }
  std::printf("%s\n", table.ToString().c_str());
}

void RunKnn() {
  std::printf("--- 2-D k-NN via the distance-stream reduction ---\n");
  const Point2 post{500, 500};
  TextTable table({"protocol", "messages", "reinits", "violations"});

  struct Case {
    const char* label;
    ProtocolKind protocol;
    double eps;
    std::size_t r;
  };
  const Case cases[] = {
      {"ZT-RP (exact)", ProtocolKind::kZtRp, 0, 0},
      {"FT-RP eps=0.2", ProtocolKind::kFtRp, 0.2, 0},
      {"FT-RP eps=0.4", ProtocolKind::kFtRp, 0.4, 0},
      {"RTP r=5", ProtocolKind::kRtp, 0, 5},
      {"RTP r=20", ProtocolKind::kRtp, 0, 20},
  };
  for (const Case& c : cases) {
    PlaneWalkConfig walk_config;
    walk_config.num_streams = 2000;
    walk_config.sigma = 15;
    walk_config.seed = 59;
    PlaneWalkStreams plane(walk_config);
    DistanceStreamSet distances(&plane, post);

    SystemConfig config;
    config.source = SourceSpec::Custom(&distances);
    config.query = QuerySpec::BottomK(20);
    config.protocol = c.protocol;
    config.fraction = {c.eps, c.eps};
    config.rank_r = c.r;
    config.duration = 250 * bench::Scale();
    config.oracle.sample_interval = config.duration / 50;
    const RunResult result = bench::MustRun(config);
    table.AddRow({c.label, bench::Msgs(result.MaintenanceMessages()),
                  Fmt("%llu", (unsigned long long)result.reinits),
                  bench::OracleCell(result)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

void Run() {
  bench::PrintBanner(
      "Extension: 2-D queries (paper §7 generalization)",
      "(beyond the paper) the 1-D machinery carries to the plane: rect "
      "filters for range queries, disk bounds (via derived distance "
      "streams) for k-NN",
      "tolerance reduces messages in 2-D exactly as in 1-D; "
      "boundary-nearest still wins; FT-RP/RTP beat ZT-RP");
  RunRect();
  RunKnn();
}

}  // namespace
}  // namespace asf

int main() {
  asf::Run();
  return 0;
}
