/// Ablation — FT-NRP re-initialization policy (paper §5.1.1, last remark).
///
/// Once both silent-filter budgets are exhausted, FT-NRP degenerates to
/// ZT-NRP. The paper notes the Initialization phase "may be run again" to
/// re-exploit the tolerance, at an O(n)-message price. This harness
/// quantifies that trade-off: for a long run, does re-initialization pay
/// for itself?

#include "bench_common.h"

namespace asf {
namespace {

void Run() {
  bench::PrintBanner(
      "Ablation: FT-NRP reinit policy (never vs when-exhausted)",
      "(beyond the paper) re-running Initialization restores silent "
      "filters at O(n) messages each time",
      "on long runs with high tolerance, when-exhausted approaches or "
      "beats never; on short runs the O(n) probes dominate");

  const std::vector<double> durations{2000.0, 8000.0, 20000.0};
  const std::vector<double> tolerances{0.1, 0.3};
  std::vector<SystemConfig> configs;
  for (double duration : durations) {
    for (double eps : tolerances) {
      for (int p = 0; p < 2; ++p) {
        SystemConfig config;
        RandomWalkConfig walk;
        walk.num_streams = 1000;
        walk.sigma = 60;  // volatile values drain Fix_Error budgets
        walk.seed = 31;
        config.source = SourceSpec::Walk(walk);
        config.query = QuerySpec::Range(400, 600);
        config.protocol = ProtocolKind::kFtNrp;
        config.fraction = {eps, eps};
        config.ft.reinit = (p == 0) ? ReinitPolicy::kNever
                                    : ReinitPolicy::kWhenExhausted;
        config.duration = duration * bench::Scale();
        configs.push_back(config);
      }
    }
  }
  const std::vector<RunResult> results = bench::MustRunAll(configs);

  TextTable table({"duration", "eps", "never", "when-exhausted", "reinits"});
  std::size_t i = 0;
  for (double duration : durations) {
    for (double eps : tolerances) {
      const RunResult& never = results[i++];
      const RunResult& when_exhausted = results[i++];
      table.AddRow({Fmt("%.0f", duration), Fmt("%.1f", eps),
                    bench::Msgs(never.MaintenanceMessages()),
                    bench::Msgs(when_exhausted.MaintenanceMessages()),
                    Fmt("%llu", static_cast<unsigned long long>(
                                    when_exhausted.reinits))});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace
}  // namespace asf

int main() {
  asf::Run();
  return 0;
}
