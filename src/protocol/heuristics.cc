#include "protocol/heuristics.h"

#include <algorithm>

#include "common/check.h"

namespace asf {

std::string_view SelectionHeuristicName(SelectionHeuristic h) {
  switch (h) {
    case SelectionHeuristic::kRandom:
      return "random";
    case SelectionHeuristic::kBoundaryNearest:
      return "boundary-nearest";
  }
  return "unknown";
}

std::string_view ReinitPolicyName(ReinitPolicy p) {
  switch (p) {
    case ReinitPolicy::kNever:
      return "never";
    case ReinitPolicy::kWhenExhausted:
      return "when-exhausted";
  }
  return "unknown";
}

std::vector<StreamId> SelectFilterHolders(
    const std::vector<StreamId>& candidates, std::size_t count,
    SelectionHeuristic heuristic,
    const std::function<double(StreamId)>& priority, Rng* rng) {
  std::vector<StreamId> picked = candidates;
  const std::size_t take = std::min(count, picked.size());
  switch (heuristic) {
    case SelectionHeuristic::kRandom:
      ASF_CHECK(rng != nullptr);
      rng->Shuffle(&picked);
      break;
    case SelectionHeuristic::kBoundaryNearest:
      ASF_CHECK(priority != nullptr);
      std::sort(picked.begin(), picked.end(),
                [&priority](StreamId a, StreamId b) {
                  const double pa = priority(a);
                  const double pb = priority(b);
                  if (pa != pb) return pa < pb;
                  return a < b;
                });
      break;
  }
  picked.resize(take);
  return picked;
}

}  // namespace asf
