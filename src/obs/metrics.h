#ifndef ASF_OBS_METRICS_H_
#define ASF_OBS_METRICS_H_

#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/types.h"

/// \file
/// Metrics registry (DESIGN.md §14): named gauges and log-bucketed
/// histograms, sampled on a sim-time grid (`--metrics-every=T`) and
/// emitted as the "timeseries" / "histograms" blocks of --bench-json.
///
/// Gauges are pull-based: the engine registers a closure at Run start
/// (reading its own live counters) and the registry samples them at grid
/// points. Sampling happens between scheduler events on the engine's
/// driving thread, so a snapshot never observes a half-applied update —
/// and never perturbs one (the registry is read-only on engine state).
///
/// Threading contract: single-threaded, owned by the run driver. The
/// sharded engine samples only at epoch barriers (workers quiescent);
/// histogram feed sites all run on the coordinator / net thread.

namespace asf {
namespace obs {

/// Base-2 log-bucketed histogram. Bucket 0 collects underflow (values
/// below `min_value`, including zero and negatives); the last bucket
/// collects overflow. Bucket i (0 < i < buckets-1) covers
/// [min_value * 2^(i-1), min_value * 2^i). Merge is elementwise and
/// therefore associative and commutative — shard-local histograms can be
/// combined in any order with identical results.
class LogHistogram {
 public:
  explicit LogHistogram(double min_value = 1e-6, std::size_t buckets = 64)
      : min_value_(min_value), counts_(buckets, 0) {
    ASF_CHECK_MSG(min_value > 0, "LogHistogram min_value must be positive");
    ASF_CHECK_MSG(buckets >= 3, "LogHistogram needs underflow+1+overflow");
  }

  void Add(double v) { AddRepeated(v, 1); }

  void AddRepeated(double v, std::uint64_t n) {
    counts_[BucketOf(v)] += n;
    count_ += n;
    sum_ += v * static_cast<double>(n);
  }

  /// Elementwise merge; the bucket shapes must match.
  void Merge(const LogHistogram& other) {
    ASF_CHECK_MSG(
        counts_.size() == other.counts_.size() &&
            min_value_ == other.min_value_,
        "LogHistogram::Merge requires identical bucket shapes");
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      counts_[i] += other.counts_[i];
    }
    count_ += other.count_;
    sum_ += other.sum_;
  }

  std::size_t BucketOf(double v) const {
    if (!(v >= min_value_)) return 0;  // underflow; catches NaN too
    // frexp(x) yields x = mant * 2^exp with mant in [0.5, 1), so for
    // x = v/min >= 1 the exponent IS the bucket: x in [2^(e-1), 2^e)
    // maps to bucket e, and an exact power of two (mant == 0.5) lands
    // in the bucket whose inclusive low edge it is — no epsilon games.
    int exp = 0;
    (void)std::frexp(v / min_value_, &exp);
    const std::size_t index = exp <= 0 ? 1 : static_cast<std::size_t>(exp);
    if (index + 1 >= counts_.size()) return counts_.size() - 1;  // overflow
    return index;
  }

  /// Low edge of bucket i (bucket 0 is the underflow bin: edge 0).
  double bucket_lo(std::size_t i) const {
    if (i == 0) return 0;
    return min_value_ * std::ldexp(1.0, static_cast<int>(i) - 1);
  }

  std::size_t buckets() const { return counts_.size(); }
  std::uint64_t bucket_count(std::size_t i) const { return counts_[i]; }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  double min_value() const { return min_value_; }

 private:
  double min_value_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
  std::vector<std::uint64_t> counts_;
};

/// The histogram endpoints the network layer feeds (staleness per
/// delivered payload, bounded-bandwidth queue depth, retransmit RTO
/// estimates). Built by MetricsRegistry::net_sink(); a null sink (the
/// default) keeps the feed sites to one branch.
struct NetMetricsSink {
  LogHistogram* staleness = nullptr;
  LogHistogram* queue_depth = nullptr;
  LogHistogram* rto = nullptr;
};

/// One sampled row of the time series: every registered gauge evaluated
/// at sim-time `time`, in gauge registration order.
struct MetricsRow {
  SimTime time = 0;
  std::vector<double> values;
};

/// The per-run registry: owns the histograms, the gauge closures, and
/// the sampled series. Engines receive it through ObsHooks (null = off).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers a pull gauge. The closure must stay valid until
  /// ClearGauges() — engines register at Run start and clear before
  /// returning, because the closures capture engine internals.
  void RegisterGauge(const std::string& name, std::function<double()> fn) {
    gauge_names_.push_back(name);
    gauges_.push_back(std::move(fn));
  }

  /// Drops every gauge closure. The names and the sampled series stay —
  /// the engine clears before returning (the closures capture engine
  /// internals) but TimeSeriesJson still needs the column names.
  void ClearGauges() { gauges_.clear(); }

  /// Find-or-create a named histogram. Shape parameters apply on
  /// creation only.
  LogHistogram* Histogram(const std::string& name, double min_value = 1e-6,
                          std::size_t buckets = 64) {
    for (std::size_t i = 0; i < histogram_names_.size(); ++i) {
      if (histogram_names_[i] == name) return histograms_[i].get();
    }
    histogram_names_.push_back(name);
    histograms_.push_back(std::make_unique<LogHistogram>(min_value, buckets));
    return histograms_.back().get();
  }

  /// The network layer's histogram bundle (creates net_staleness,
  /// net_queue_depth, net_rto on first call).
  NetMetricsSink* net_sink() {
    if (net_sink_ == nullptr) {
      net_sink_ = std::make_unique<NetMetricsSink>();
      net_sink_->staleness = Histogram("net_staleness");
      net_sink_->queue_depth = Histogram("net_queue_depth", 1.0, 32);
      net_sink_->rto = Histogram("net_rto");
    }
    return net_sink_.get();
  }

  /// Samples every registered gauge at sim-time `t`, appending one row.
  void SnapshotAt(SimTime t) {
    MetricsRow row;
    row.time = t;
    row.values.reserve(gauges_.size());
    for (const auto& gauge : gauges_) row.values.push_back(gauge());
    series_.push_back(std::move(row));
  }

  const std::vector<MetricsRow>& series() const { return series_; }
  const std::vector<std::string>& gauge_names() const { return gauge_names_; }
  const std::vector<std::string>& histogram_names() const {
    return histogram_names_;
  }
  const LogHistogram* FindHistogram(const std::string& name) const {
    for (std::size_t i = 0; i < histogram_names_.size(); ++i) {
      if (histogram_names_[i] == name) return histograms_[i].get();
    }
    return nullptr;
  }

  /// Complete JSON values for metrics::JsonWriter::AddBlock.
  /// TimeSeriesJson: {"gauges": [...names...], "rows": [[t, v...], ...]}.
  std::string TimeSeriesJson() const;
  /// HistogramsJson: {"name": {"count": N, "mean": M, "buckets":
  /// [[lo, count], ...nonzero...]}, ...}.
  std::string HistogramsJson() const;

 private:
  std::vector<std::string> gauge_names_;
  std::vector<std::function<double()>> gauges_;
  std::vector<std::string> histogram_names_;
  std::vector<std::unique_ptr<LogHistogram>> histograms_;
  std::unique_ptr<NetMetricsSink> net_sink_;
  std::vector<MetricsRow> series_;
};

}  // namespace obs
}  // namespace asf

#endif  // ASF_OBS_METRICS_H_
