#include "engine/multi_system.h"

#include <gtest/gtest.h>

#include <limits>

#include "engine/system.h"
#include "trace/tcp_synth.h"

namespace asf {
namespace {

MultiQueryConfig BaseConfig(std::uint64_t seed = 7) {
  MultiQueryConfig config;
  RandomWalkConfig walk;
  walk.num_streams = 300;
  walk.seed = seed;
  config.source = SourceSpec::Walk(walk);
  config.duration = 600;
  config.seed = seed;
  return config;
}

QueryDeployment RangeDep(std::string name, double lo, double hi, double eps) {
  QueryDeployment dep;
  dep.name = std::move(name);
  dep.query = QuerySpec::Range(lo, hi);
  dep.protocol = eps > 0 ? ProtocolKind::kFtNrp : ProtocolKind::kZtNrp;
  dep.fraction = {eps, eps};
  return dep;
}

QueryDeployment RtpDep(std::string name, std::size_t k, std::size_t r,
                       double q) {
  QueryDeployment dep;
  dep.name = std::move(name);
  dep.query = QuerySpec::Knn(k, q);
  dep.protocol = ProtocolKind::kRtp;
  dep.rank_r = r;
  return dep;
}

// --- Validation ---

TEST(MultiQueryConfigTest, RejectsEmptyQueryList) {
  MultiQueryConfig config = BaseConfig();
  EXPECT_FALSE(RunMultiQuerySystem(config).ok());
}

TEST(MultiQueryConfigTest, RejectsDuplicateNames) {
  MultiQueryConfig config = BaseConfig();
  config.queries.push_back(RangeDep("q", 400, 600, 0));
  config.queries.push_back(RangeDep("q", 100, 200, 0));
  EXPECT_FALSE(RunMultiQuerySystem(config).ok());
}

TEST(MultiQueryConfigTest, RejectsUnnamedQuery) {
  MultiQueryConfig config = BaseConfig();
  config.queries.push_back(RangeDep("", 400, 600, 0));
  EXPECT_FALSE(RunMultiQuerySystem(config).ok());
}

TEST(MultiQueryConfigTest, RejectsMismatchedProtocol) {
  MultiQueryConfig config = BaseConfig();
  QueryDeployment bad = RtpDep("knn", 5, 2, 500);
  bad.protocol = ProtocolKind::kFtNrp;  // range protocol, rank query
  config.queries.push_back(bad);
  EXPECT_FALSE(RunMultiQuerySystem(config).ok());
}

TEST(MultiQueryConfigTest, RejectsLifecycleWindowOutsideRun) {
  MultiQueryConfig config = BaseConfig();
  QueryDeployment late = RangeDep("late", 400, 600, 0);
  late.start = config.duration;  // deploy at/after the horizon
  config.queries.push_back(late);
  EXPECT_FALSE(RunMultiQuerySystem(config).ok());
}

TEST(MultiQueryConfigTest, RejectsEmptyLiveWindow) {
  MultiQueryConfig config = BaseConfig();
  QueryDeployment backwards = RangeDep("backwards", 400, 600, 0);
  backwards.start = 100;
  backwards.end = 100;  // retires the instant it deploys
  config.queries.push_back(backwards);
  EXPECT_FALSE(RunMultiQuerySystem(config).ok());

  // A default start resolves to query_start; an end before that is just
  // as empty.
  MultiQueryConfig config2 = BaseConfig();
  config2.query_start = 50;
  QueryDeployment gone = RangeDep("gone", 400, 600, 0);
  gone.end = 10;
  config2.queries.push_back(gone);
  EXPECT_FALSE(RunMultiQuerySystem(config2).ok());
}

TEST(MultiQueryConfigTest, AcceptsEndBeyondHorizon) {
  MultiQueryConfig config = BaseConfig();
  QueryDeployment open = RangeDep("open", 400, 600, 0);
  open.start = 100;
  open.end = config.duration * 10;  // never retires in practice
  config.queries.push_back(open);
  auto result = RunMultiQuerySystem(config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->queries[0].deployed_at, 100.0);
  EXPECT_EQ(result->queries[0].retired_at, config.duration);
}

TEST(MultiQueryConfigTest, RejectsNanLifecycleTimes) {
  MultiQueryConfig config = BaseConfig();
  QueryDeployment bad = RangeDep("nan-end", 400, 600, 0);
  bad.end = std::numeric_limits<double>::quiet_NaN();
  config.queries.push_back(bad);
  EXPECT_FALSE(RunMultiQuerySystem(config).ok());

  MultiQueryConfig config2 = BaseConfig();
  QueryDeployment bad2 = RangeDep("nan-start", 400, 600, 0);
  bad2.start = std::numeric_limits<double>::quiet_NaN();
  config2.queries.push_back(bad2);
  EXPECT_FALSE(RunMultiQuerySystem(config2).ok());
}

/// No message-cost cliff at the horizon: a query whose end coincides with
/// the run's end is the same observable run as one that never retires —
/// in particular it is NOT charged an uninstall broadcast at the instant
/// the simulation stops.
TEST(MultiSystemTest, EndAtHorizonCostsTheSameAsNeverRetiring) {
  MultiQueryConfig at_horizon = BaseConfig();
  QueryDeployment dep = RangeDep("q", 400, 600, 0);
  dep.end = at_horizon.duration;
  at_horizon.queries.push_back(dep);
  auto a = RunMultiQuerySystem(at_horizon);
  ASSERT_TRUE(a.ok());

  MultiQueryConfig never = BaseConfig();
  never.queries.push_back(RangeDep("q", 400, 600, 0));
  auto b = RunMultiQuerySystem(never);
  ASSERT_TRUE(b.ok());

  EXPECT_EQ(a->queries[0].messages.MaintenanceTotal(),
            b->queries[0].messages.MaintenanceTotal());
  EXPECT_EQ(a->queries[0].retired_at, b->queries[0].retired_at);
  EXPECT_EQ(a->updates_generated, b->updates_generated);
}

// --- Behaviour ---

TEST(MultiSystemTest, SingleQueryMatchesSingleSystem) {
  // A multi-query run with one query must reproduce RunSystem exactly.
  MultiQueryConfig multi = BaseConfig();
  multi.queries.push_back(RangeDep("range", 400, 600, 0.3));
  auto multi_result = RunMultiQuerySystem(multi);
  ASSERT_TRUE(multi_result.ok());

  SystemConfig single;
  single.source = multi.source;
  single.query = QuerySpec::Range(400, 600);
  single.protocol = ProtocolKind::kFtNrp;
  single.fraction = {0.3, 0.3};
  single.duration = multi.duration;
  single.seed = multi.seed;
  auto single_result = RunSystem(single);
  ASSERT_TRUE(single_result.ok());

  ASSERT_EQ(multi_result->queries.size(), 1u);
  EXPECT_EQ(multi_result->queries[0].messages.MaintenanceTotal(),
            single_result->messages.MaintenanceTotal());
  EXPECT_EQ(multi_result->queries[0].updates_reported,
            single_result->updates_reported);
  EXPECT_EQ(multi_result->physical_updates, single_result->updates_reported);
}

TEST(MultiSystemTest, SharedUpdatesSaveMessages) {
  // Two heavily overlapping range queries: most crossings violate both
  // filters, so physical updates ~ half the logical ones.
  MultiQueryConfig config = BaseConfig();
  config.queries.push_back(RangeDep("a", 400, 600, 0));
  config.queries.push_back(RangeDep("b", 400, 600, 0));  // identical range
  auto result = RunMultiQuerySystem(config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->queries[0].updates_reported,
            result->queries[1].updates_reported);
  EXPECT_EQ(result->physical_updates, result->queries[0].updates_reported);
  EXPECT_EQ(result->LogicalUpdates(), 2 * result->physical_updates);
  EXPECT_LT(result->PhysicalMaintenanceTotal(),
            result->LogicalMaintenanceTotal());
}

TEST(MultiSystemTest, DisjointQueriesShareLittle) {
  MultiQueryConfig config = BaseConfig();
  config.queries.push_back(RangeDep("low", 100, 200, 0));
  config.queries.push_back(RangeDep("high", 800, 900, 0));
  auto result = RunMultiQuerySystem(config);
  ASSERT_TRUE(result.ok());
  // A crossing of [100,200] is never simultaneously a crossing of
  // [800,900] (one value change can't cross both disjoint ranges from a
  // single previous value... it can cross one boundary of each with a big
  // jump, so allow a small overlap).
  const std::uint64_t logical = result->LogicalUpdates();
  EXPECT_GE(logical, result->physical_updates);
  EXPECT_LT(logical - result->physical_updates, logical / 10);
}

TEST(MultiSystemTest, MixedClassesRunTogether) {
  MultiQueryConfig config = BaseConfig();
  config.oracle.check_every_update = true;
  config.queries.push_back(RangeDep("range", 400, 600, 0.3));
  config.queries.push_back(RtpDep("knn", 5, 3, 500));
  QueryDeployment ftrp;
  ftrp.name = "ftrp";
  ftrp.query = QuerySpec::Knn(10, 250);
  ftrp.protocol = ProtocolKind::kFtRp;
  ftrp.fraction = {0.3, 0.3};
  config.queries.push_back(ftrp);

  auto result = RunMultiQuerySystem(config);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->queries.size(), 3u);
  for (const auto& q : result->queries) {
    EXPECT_GT(q.oracle_checks, 0u) << q.name;
    EXPECT_EQ(q.oracle_violations, 0u) << q.name;
  }
  // RTP's answers always have exactly k members.
  EXPECT_DOUBLE_EQ(result->queries[1].answer_size.min(), 5.0);
  EXPECT_DOUBLE_EQ(result->queries[1].answer_size.max(), 5.0);
}

TEST(MultiSystemTest, PerQueryIsolationOfFilters) {
  // A probe or deploy from one query's protocol must not disturb another
  // query's filter reference state: run an aggressive re-initializer
  // (ZT-RP) next to a quiet range query and check the range query still
  // sees exactly its own crossings.
  MultiQueryConfig config = BaseConfig();
  config.oracle.check_every_update = true;
  config.queries.push_back(RangeDep("range", 400, 600, 0));
  QueryDeployment ztrp;
  ztrp.name = "ztrp";
  ztrp.query = QuerySpec::Knn(5, 500);
  ztrp.protocol = ProtocolKind::kZtRp;
  config.queries.push_back(ztrp);
  auto result = RunMultiQuerySystem(config);
  ASSERT_TRUE(result.ok());
  for (const auto& q : result->queries) {
    EXPECT_EQ(q.oracle_violations, 0u) << q.name;
  }
}

TEST(MultiSystemTest, Deterministic) {
  MultiQueryConfig config = BaseConfig();
  config.queries.push_back(RangeDep("a", 300, 500, 0.2));
  config.queries.push_back(RtpDep("b", 8, 4, 700));
  auto x = RunMultiQuerySystem(config);
  auto y = RunMultiQuerySystem(config);
  ASSERT_TRUE(x.ok());
  ASSERT_TRUE(y.ok());
  EXPECT_EQ(x->physical_updates, y->physical_updates);
  EXPECT_EQ(x->LogicalMaintenanceTotal(), y->LogicalMaintenanceTotal());
}

TEST(MultiSystemTest, RunsOnTraceSource) {
  TcpSynthConfig synth;
  synth.num_subnets = 80;
  synth.total_connections = 4000;
  synth.duration = 800;
  auto trace = GenerateTcpTrace(synth);
  ASSERT_TRUE(trace.ok());

  MultiQueryConfig config;
  config.source = SourceSpec::Trace(&trace.value());
  config.duration = 800;
  config.oracle.sample_interval = 40;
  config.queries.push_back(RangeDep("band", 400, 600, 0.3));
  QueryDeployment topk;
  topk.name = "top5";
  topk.query = QuerySpec::TopK(5);
  topk.protocol = ProtocolKind::kRtp;
  topk.rank_r = 3;
  config.queries.push_back(topk);

  auto result = RunMultiQuerySystem(config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->updates_generated, 4000u);
  for (const auto& q : result->queries) {
    EXPECT_EQ(q.oracle_violations, 0u) << q.name;
    EXPECT_GT(q.oracle_checks, 0u) << q.name;
  }
}

TEST(MultiSystemTest, TenQueriesScale) {
  MultiQueryConfig config = BaseConfig();
  for (int i = 0; i < 10; ++i) {
    config.queries.push_back(
        RangeDep("q" + std::to_string(i), 100.0 * i, 100.0 * i + 150, 0.2));
  }
  auto result = RunMultiQuerySystem(config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->queries.size(), 10u);
  EXPECT_GT(result->physical_updates, 0u);
  EXPECT_LE(result->physical_updates, result->LogicalUpdates());
  EXPECT_LE(result->physical_updates, result->updates_generated);
}

}  // namespace
}  // namespace asf
