#ifndef ASF_FILTER_CONSTRAINT_H_
#define ASF_FILTER_CONSTRAINT_H_

#include <string>

#include "common/interval.h"

/// \file
/// Filter constraints as assigned by the server's constraint assignment
/// unit (paper Figure 3). A constraint is either absent ("no filter is
/// installed at a stream, all updates from the stream are reported",
/// paper §3.1) or a closed interval, with the two degenerate interval forms
/// playing named roles in FT-NRP (§5.1.1):
///   [−∞, ∞] — false-positive filter: the stream never reports and is kept
///             in the answer set;
///   [∞, ∞]  — false-negative filter: the stream never reports and is kept
///             out of the answer set.

namespace asf {

/// A stream-side filtering rule.
class FilterConstraint {
 public:
  /// Constructs the "no filter installed" constraint (report everything).
  FilterConstraint() : has_filter_(false), interval_(Interval::Always()) {}

  /// Constructs an interval constraint.
  explicit FilterConstraint(const Interval& interval)
      : has_filter_(true), interval_(interval) {}

  /// No filter installed: every update is reported.
  static FilterConstraint NoFilter() { return FilterConstraint(); }

  /// Interval filter [lo, hi].
  static FilterConstraint Range(const Interval& interval) {
    return FilterConstraint(interval);
  }

  /// The FT-NRP false-positive filter [−∞, ∞].
  static FilterConstraint FalsePositive() {
    return FilterConstraint(Interval::Always());
  }

  /// The FT-NRP false-negative filter [∞, ∞].
  static FilterConstraint FalseNegative() {
    return FilterConstraint(Interval::Never());
  }

  /// True when an interval filter is installed.
  bool has_filter() const { return has_filter_; }

  /// The interval (meaningful only when has_filter()).
  const Interval& interval() const { return interval_; }

  /// True for the [−∞, ∞] constraint: the stream can never cross it, so it
  /// never reports.
  bool IsFalsePositiveFilter() const { return has_filter_ && interval_.all(); }

  /// True for the [∞, ∞] constraint: likewise silent.
  bool IsFalseNegativeFilter() const {
    return has_filter_ && interval_.empty();
  }

  /// True when the constraint can never generate a report (either silent
  /// degenerate form).
  bool IsSilent() const {
    return IsFalsePositiveFilter() || IsFalseNegativeFilter();
  }

  bool operator==(const FilterConstraint& other) const {
    if (has_filter_ != other.has_filter_) return false;
    return !has_filter_ || interval_ == other.interval_;
  }
  bool operator!=(const FilterConstraint& other) const {
    return !(*this == other);
  }

  /// "none", "[lo, hi]", "FP[-inf, inf]" or "FN[empty]".
  std::string ToString() const;

 private:
  bool has_filter_;
  Interval interval_;
};

}  // namespace asf

#endif  // ASF_FILTER_CONSTRAINT_H_
