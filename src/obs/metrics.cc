#include "obs/metrics.h"

#include <cstdio>
#include <sstream>

namespace asf {
namespace obs {
namespace {

void AppendDouble(std::ostringstream* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out << buf;
}

}  // namespace

std::string MetricsRegistry::TimeSeriesJson() const {
  std::ostringstream out;
  out << "{\"gauges\": [";
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    out << (i > 0 ? ", " : "") << '"' << gauge_names_[i] << '"';
  }
  out << "], \"rows\": [";
  for (std::size_t r = 0; r < series_.size(); ++r) {
    const MetricsRow& row = series_[r];
    out << (r > 0 ? ", " : "") << '[';
    AppendDouble(&out, row.time);
    for (double v : row.values) {
      out << ", ";
      AppendDouble(&out, v);
    }
    out << ']';
  }
  out << "]}";
  return out.str();
}

std::string MetricsRegistry::HistogramsJson() const {
  std::ostringstream out;
  out << '{';
  for (std::size_t h = 0; h < histogram_names_.size(); ++h) {
    const LogHistogram& hist = *histograms_[h];
    out << (h > 0 ? ", " : "") << '"' << histogram_names_[h]
        << "\": {\"count\": " << hist.count() << ", \"mean\": ";
    AppendDouble(&out, hist.mean());
    out << ", \"buckets\": [";
    bool first = true;
    for (std::size_t i = 0; i < hist.buckets(); ++i) {
      if (hist.bucket_count(i) == 0) continue;
      out << (first ? "" : ", ") << '[';
      AppendDouble(&out, hist.bucket_lo(i));
      out << ", " << hist.bucket_count(i) << ']';
      first = false;
    }
    out << "]}";
  }
  out << '}';
  return out.str();
}

}  // namespace obs
}  // namespace asf
