#include "metrics/provenance.h"

#include "common/simd.h"

// CMake scopes these two definitions to this translation unit only (see
// set_source_files_properties in CMakeLists.txt) so a new commit only
// recompiles one file, not the whole library.
#ifndef ASF_GIT_SHA
#define ASF_GIT_SHA "unknown"
#endif
#ifndef ASF_BUILD_TYPE
#define ASF_BUILD_TYPE "unknown"
#endif

namespace asf {

std::vector<std::pair<std::string, std::string>> BuildProvenance() {
  return {{"git_sha", ASF_GIT_SHA},
          {"build_type", ASF_BUILD_TYPE},
          {"simd_backend", simd::KernelBackend()}};
}

}  // namespace asf
