/// Figure 9 reproduction — "RTP: Effect of r" (paper §6.1).
///
/// Workload: synthetic wide-area TCP trace (LBL substitute, DESIGN.md §3),
/// 800 subnet streams; a continuous top-k query reports the subnets with
/// the k highest "bytes sent" values. One curve per k ∈ {15, 20, 25, 30},
/// sweeping the rank tolerance r from 0 to 20, plus the no-filter baseline.

#include "bench_common.h"
#include "trace/tcp_synth.h"

namespace asf {
namespace {

void Run() {
  TcpSynthConfig synth;
  synth.num_subnets = 800;
  synth.total_connections =
      static_cast<std::uint64_t>(45000 * bench::Scale());
  synth.duration = 5000;
  synth.seed = 7;
  auto trace = GenerateTcpTrace(synth);
  ASF_CHECK(trace.ok());

  bench::PrintBanner(
      "Figure 9: RTP on TCP data, messages vs rank tolerance r",
      "for each k, messages fall as r grows; at r=0 RTP can exceed the "
      "no-filter baseline (bound recomputed too often)",
      "rows monotone decreasing left-to-right; r=0 column near or above "
      "no-filter for large k");

  SystemConfig base;
  base.source = SourceSpec::Trace(&trace.value());
  base.duration = synth.duration;
  base.oracle.sample_interval = synth.duration / 100;

  // Baseline: no filter at all. The query type does not change its cost.
  // The baseline and the whole k × r grid run as one parallel batch.
  SystemConfig no_filter = base;
  no_filter.query = QuerySpec::TopK(15);
  no_filter.protocol = ProtocolKind::kNoFilter;

  const std::vector<std::size_t> ks{15, 20, 25, 30};
  const std::vector<std::size_t> rs{0, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20};
  std::vector<SystemConfig> configs{no_filter};
  for (std::size_t k : ks) {
    for (std::size_t r : rs) {
      SystemConfig config = base;
      config.query = QuerySpec::TopK(k);
      config.protocol = ProtocolKind::kRtp;
      config.rank_r = r;
      configs.push_back(config);
    }
  }
  const std::vector<RunResult> results = bench::MustRunAll(configs);

  const RunResult& baseline = results[0];
  std::printf("no filter: %s messages (= %llu updates)\n\n",
              bench::Msgs(baseline.MaintenanceMessages()).c_str(),
              static_cast<unsigned long long>(baseline.updates_generated));

  std::vector<std::string> header{"k \\ r"};
  for (std::size_t r : rs) header.push_back(Fmt("r=%zu", r));
  header.push_back("oracle_viol");
  TextTable table(header);

  for (std::size_t ki = 0; ki < ks.size(); ++ki) {
    std::vector<std::string> row{Fmt("k=%zu", ks[ki])};
    std::uint64_t violations = 0;
    std::uint64_t checks = 0;
    for (std::size_t ri = 0; ri < rs.size(); ++ri) {
      const RunResult& result = results[1 + ki * rs.size() + ri];
      row.push_back(bench::Msgs(result.MaintenanceMessages()));
      violations += result.oracle_violations;
      checks += result.oracle_checks;
    }
    row.push_back(Fmt("%llu/%llu", static_cast<unsigned long long>(violations),
                      static_cast<unsigned long long>(checks)));
    table.AddRow(row);
  }
  std::printf("%s\n", table.ToString().c_str());
  bench::MaybeWriteCsv(table, "fig09");
  bench::MaybeWriteBenchJsonFromResults("fig09", results);
}

}  // namespace
}  // namespace asf

int main() {
  asf::Run();
  return 0;
}
