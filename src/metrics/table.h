#ifndef ASF_METRICS_TABLE_H_
#define ASF_METRICS_TABLE_H_

#include <string>
#include <vector>

#include "common/status.h"

/// \file
/// Plain-text result tables for the benchmark harnesses: each bench prints
/// the series of the paper figure it reproduces as an aligned table, and
/// can dump the same data as CSV for plotting.

namespace asf {

/// A column-aligned text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; must have exactly as many cells as the header.
  void AddRow(std::vector<std::string> row);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return header_.size(); }

  /// Renders with right-aligned columns and a separator under the header.
  std::string ToString() const;

  /// Writes header + rows as CSV.
  Status WriteCsv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style std::string helper for table cells.
std::string Fmt(const char* fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(printf, 1, 2)))
#endif
    ;

}  // namespace asf

#endif  // ASF_METRICS_TABLE_H_
