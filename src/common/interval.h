#ifndef ASF_COMMON_INTERVAL_H_
#define ASF_COMMON_INTERVAL_H_

#include <algorithm>
#include <string>

#include "common/check.h"
#include "common/types.h"

/// \file
/// Closed real intervals, the representation of both filter constraints and
/// range-query predicates (paper §3.1: "A filter constraint is a closed
/// interval [l_i, u_i]").
///
/// Two degenerate forms from the paper are first-class citizens:
///  * `[−∞, ∞]`  — the *false-positive filter* of FT-NRP: every value is
///    inside, so the stream never reports (it is effectively shut down while
///    counted as part of the answer).
///  * `[∞, ∞]`   — the *false-negative filter*: no finite value is inside, so
///    the stream never reports while counted as outside the answer. We
///    canonicalize any lo > hi interval to this empty form.

namespace asf {

/// A closed interval [lo, hi] over stream values. Endpoints may be infinite.
class Interval {
 public:
  /// Constructs the empty interval (canonical [∞, ∞]).
  Interval() : lo_(kInf), hi_(kInf), empty_(true) {}

  /// Constructs [lo, hi]; an interval with lo > hi is canonicalized to
  /// Never().
  Interval(Value lo, Value hi) {
    if (lo > hi) {
      lo_ = kInf;
      hi_ = kInf;
      empty_ = true;
    } else {
      lo_ = lo;
      hi_ = hi;
      empty_ = false;
    }
  }

  /// The all-accepting interval [−∞, ∞] (false-positive filter).
  static Interval Always() { return Interval(-kInf, kInf); }

  /// The empty interval [∞, ∞] (false-negative filter).
  static Interval Never() { return Interval(); }

  /// The ball {v : |v − center| ≤ radius} = [center − radius, center +
  /// radius]. A negative radius yields Never().
  static Interval Ball(Value center, Value radius) {
    if (radius < 0) return Never();
    return Interval(center - radius, center + radius);
  }

  Value lo() const { return lo_; }
  Value hi() const { return hi_; }

  /// True if no value is contained.
  bool empty() const { return empty_; }

  /// True if every value is contained ([−∞, ∞]).
  bool all() const { return !empty_ && lo_ == -kInf && hi_ == kInf; }

  /// Closed-interval membership: lo ≤ v ≤ hi.
  bool Contains(Value v) const { return !empty_ && lo_ <= v && v <= hi_; }

  /// True if `other` ⊆ this.
  bool ContainsInterval(const Interval& other) const {
    if (other.empty()) return true;
    if (empty()) return false;
    return lo_ <= other.lo_ && other.hi_ <= hi_;
  }

  /// Intersection of two intervals (empty if disjoint).
  Interval Intersect(const Interval& other) const {
    if (empty() || other.empty()) return Never();
    return Interval(std::max(lo_, other.lo_), std::min(hi_, other.hi_));
  }

  /// Width hi − lo; 0 for empty intervals, +inf when either endpoint is
  /// infinite.
  Value Width() const {
    if (empty_) return 0;
    return hi_ - lo_;
  }

  /// Distance from v to the nearer boundary of the interval. Used by the
  /// boundary-nearest placement heuristic (paper §6.2, Figure 14): streams
  /// whose values lie close to a range boundary are the most likely to cross
  /// it. Infinite endpoints are unreachable boundaries and contribute +inf.
  Value DistanceToBoundary(Value v) const {
    if (empty_) return kInf;
    const Value dlo = (lo_ == -kInf) ? kInf : std::abs(v - lo_);
    const Value dhi = (hi_ == kInf) ? kInf : std::abs(v - hi_);
    return std::min(dlo, dhi);
  }

  bool operator==(const Interval& other) const {
    if (empty_ && other.empty_) return true;
    return empty_ == other.empty_ && lo_ == other.lo_ && hi_ == other.hi_;
  }
  bool operator!=(const Interval& other) const { return !(*this == other); }

  /// "[lo, hi]", "[-inf, inf]", or "[empty]".
  std::string ToString() const;

 private:
  Value lo_;
  Value hi_;
  bool empty_;
};

}  // namespace asf

#endif  // ASF_COMMON_INTERVAL_H_
