#ifndef ASF_COMMON_FLAGS_H_
#define ASF_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

/// \file
/// Minimal command-line flag parsing for the tools/ binaries. Supports
/// `--key=value`, `--key value`, and bare boolean `--key` forms; everything
/// else is a positional argument.

namespace asf {

/// Parsed command line.
class Flags {
 public:
  /// Parses argv (argv[0] is skipped). Fails on malformed flags such as
  /// `--=x`.
  static Result<Flags> Parse(int argc, const char* const* argv);

  /// True if --name was present (with or without a value).
  bool Has(const std::string& name) const;

  /// String value of --name, or `fallback` when absent. A bare boolean
  /// flag yields "true".
  std::string GetString(const std::string& name,
                        const std::string& fallback = "") const;

  /// Numeric accessors; return an error Status when the flag is present
  /// but unparsable.
  Result<double> GetDouble(const std::string& name, double fallback) const;
  Result<std::int64_t> GetInt(const std::string& name,
                              std::int64_t fallback) const;
  /// Boolean: absent -> fallback; present bare or "true"/"1" -> true;
  /// "false"/"0" -> false; anything else is an error.
  Result<bool> GetBool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// The set of flag names seen (for unknown-flag checks).
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace asf

#endif  // ASF_COMMON_FLAGS_H_
