#include "engine/system.h"

#include "engine/sharded_core.h"
#include "engine/sim_core.h"

namespace asf {

namespace {

/// Deploys the one query, runs the core, and flattens into RunResult —
/// shared verbatim between the serial and sharded engines.
template <typename Core>
RunResult RunAndFlatten(Core& core, const QueryDeployment& deployment) {
  core.AddQuery(deployment);
  core.Run();

  const QueryRunStats& stats = core.query_stats(0);
  RunResult result;
  result.messages = stats.messages;
  result.updates_generated = core.updates_generated();
  result.updates_reported = stats.updates_reported;
  result.reinits = stats.reinits;
  result.fp_filters_installed = stats.fp_filters_installed;
  result.fn_filters_installed = stats.fn_filters_installed;
  result.answer_size = stats.answer_size;
  result.oracle_checks = stats.oracle_checks;
  result.oracle_violations = stats.oracle_violations;
  result.max_f_plus = stats.max_f_plus;
  result.max_f_minus = stats.max_f_minus;
  result.max_worst_rank = stats.max_worst_rank;
  result.oracle_violations_in_flight = stats.oracle_violations_in_flight;
  result.update_delay = stats.update_delay;
  result.net = core.net_stats();
  result.dispatch_policy = core.dispatch_policy();
  result.dispatch = core.dispatch_stats();
  result.wall_seconds = core.wall_seconds();
  result.replay_seconds = core.replay_seconds();
  result.replay_workers = core.replay_workers();
  result.pinned = core.pinned();
  result.spill = core.spill_telemetry();
  return result;
}

}  // namespace

Result<RunResult> RunSystem(const SystemConfig& config) {
  ASF_RETURN_IF_ERROR(config.Validate());

  SimulationCore::Options options;
  options.source = config.source;
  options.duration = config.duration;
  options.query_start = config.query_start;
  options.seed = config.seed;
  options.oracle = config.oracle;
  options.net = config.net;
  options.dispatch = config.dispatch;
  options.spill = config.spill;
  options.obs = config.obs;

  QueryDeployment deployment;
  deployment.query = config.query;
  deployment.protocol = config.protocol;
  deployment.rank_r = config.rank_r;
  deployment.fraction = config.fraction;
  deployment.ft = config.ft;
  deployment.broadcast = config.broadcast_counts_as_one
                             ? BroadcastCostModel::kSingleMessage
                             : BroadcastCostModel::kPerRecipient;
  if (config.shards > 1) {
    ShardedSimulationCore::Options sharded;
    sharded.base = options;
    sharded.shards = config.shards;
    sharded.epoch = config.shard_epoch;
    sharded.replay_workers = config.replay_workers;
    sharded.pin_threads = config.pin_threads;
    ShardedSimulationCore core(sharded);
    return RunAndFlatten(core, deployment);
  }
  SimulationCore core(options);
  return RunAndFlatten(core, deployment);
}

}  // namespace asf
