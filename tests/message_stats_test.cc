#include "net/message_stats.h"

#include <gtest/gtest.h>

namespace asf {
namespace {

TEST(MessageStatsTest, StartsAtZeroInInitPhase) {
  MessageStats stats;
  EXPECT_EQ(stats.Total(), 0u);
  EXPECT_EQ(stats.phase(), MessagePhase::kInit);
}

TEST(MessageStatsTest, CountsUnderCurrentPhase) {
  MessageStats stats;
  stats.Count(MessageType::kProbeRequest);
  stats.Count(MessageType::kProbeResponse);
  stats.set_phase(MessagePhase::kMaintenance);
  stats.Count(MessageType::kValueUpdate, 3);

  EXPECT_EQ(stats.InitTotal(), 2u);
  EXPECT_EQ(stats.MaintenanceTotal(), 3u);
  EXPECT_EQ(stats.Total(), 5u);
  EXPECT_EQ(stats.count(MessagePhase::kInit, MessageType::kProbeRequest), 1u);
  EXPECT_EQ(
      stats.count(MessagePhase::kMaintenance, MessageType::kValueUpdate), 3u);
  EXPECT_EQ(stats.count(MessagePhase::kInit, MessageType::kValueUpdate), 0u);
}

TEST(MessageStatsTest, Reset) {
  MessageStats stats;
  stats.set_phase(MessagePhase::kMaintenance);
  stats.Count(MessageType::kFilterDeploy, 10);
  stats.Reset();
  EXPECT_EQ(stats.Total(), 0u);
  EXPECT_EQ(stats.phase(), MessagePhase::kInit);
}

TEST(MessageStatsTest, Merge) {
  MessageStats a;
  a.Count(MessageType::kProbeRequest, 2);
  a.set_phase(MessagePhase::kMaintenance);
  a.Count(MessageType::kValueUpdate, 5);

  MessageStats b;
  b.Count(MessageType::kProbeRequest, 1);
  b.set_phase(MessagePhase::kMaintenance);
  b.Count(MessageType::kValueUpdate, 7);
  b.Count(MessageType::kFilterDeploy, 1);

  a.Merge(b);
  EXPECT_EQ(a.count(MessagePhase::kInit, MessageType::kProbeRequest), 3u);
  EXPECT_EQ(a.count(MessagePhase::kMaintenance, MessageType::kValueUpdate),
            12u);
  EXPECT_EQ(a.MaintenanceTotal(), 13u);
}

TEST(MessageStatsTest, TypeNamesAreStable) {
  EXPECT_EQ(MessageTypeName(MessageType::kValueUpdate), "update");
  EXPECT_EQ(MessageTypeName(MessageType::kProbeRequest), "probe_req");
  EXPECT_EQ(MessageTypeName(MessageType::kProbeResponse), "probe_resp");
  EXPECT_EQ(MessageTypeName(MessageType::kRegionProbeRequest),
            "region_probe");
  EXPECT_EQ(MessageTypeName(MessageType::kFilterDeploy), "deploy");
}

TEST(MessageStatsTest, ToStringSummarizes) {
  MessageStats stats;
  stats.set_phase(MessagePhase::kMaintenance);
  stats.Count(MessageType::kValueUpdate, 4);
  const std::string s = stats.ToString();
  EXPECT_NE(s.find("maint/update=4"), std::string::npos);
  EXPECT_NE(s.find("maint_total=4"), std::string::npos);
}

}  // namespace
}  // namespace asf
