/// net_loss — what unreliable delivery costs: protocol × fault-schedule
/// grid over the fault pipeline (DESIGN.md §11).
///
/// The paper's protocols assume a lossless network; this harness sweeps
/// loss rates (i.i.d. and bursty), scheduled partitions, and the
/// disruption-tolerance knobs (retransmitting deploys, reconnect
/// reconciliation) and records what filtering still saves when the wire
/// eats messages:
///
///  * loss:p          — delivered messages fall ~linearly in p while the
///    retransmitting control plane keeps filters converging (retx per
///    deploy rises with p);
///  * loss:p:b        — the same stationary rate in bursts; deploy
///    retransmission clusters where the chain goes bad;
///  * partition       — crossings inside the windows drop entirely; the
///    up-edge reconciliation repairs the server view, `norecon` shows
///    what it is worth.
///
/// Every metric is deterministic simulation currency (message and drop
/// counts, never wall time), so CI gates the loss-vs-delivery accounting
/// identity `ftnrp_p05_delivered_frac` at a tight tolerance via
/// tools/bench_check.

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "engine/system.h"
#include "metrics/table.h"

namespace asf {
namespace {

struct ProtoCase {
  const char* label;
  ProtocolKind protocol;
  QuerySpec query;
  double eps;
  std::size_t rank_r;
};

struct NetCase {
  const char* label;
  const char* spec;
};

int Main(int argc, char** argv) {
  const double scale = bench::Scale();
  bench::PrintBanner(
      "net_loss: message savings & convergence vs unreliable delivery",
      "the paper's protocols assume a lossless network; here the wire "
      "drops, reorders and partitions",
      "loss: delivered messages fall ~linearly while deploy retx keeps "
      "filters converging; partition: windows drop everything and the "
      "up-edge reconciliation repairs the server view");

  const ProtoCase protos[] = {
      {"nofilter", ProtocolKind::kNoFilter, QuerySpec::Range(400, 600), 0, 0},
      {"ztnrp", ProtocolKind::kZtNrp, QuerySpec::Range(400, 600), 0, 0},
      {"ftnrp", ProtocolKind::kFtNrp, QuerySpec::Range(400, 600), 0.2, 0},
  };
  const NetCase nets[] = {
      {"p00", "latency:2"},
      {"p02", "latency:2+loss:0.02"},
      {"p05", "latency:2+loss:0.05"},
      {"p10", "latency:2+loss:0.1"},
      {"p20", "latency:2+loss:0.2"},
      {"b05x4", "latency:2+loss:0.05:4"},
      {"part", "latency:2+partition:600.5,900.5,1500.5,1800.5"},
      {"part_norec", "latency:2+partition:600.5,900.5,1500.5,1800.5+norecon"},
  };

  std::vector<SystemConfig> configs;
  for (const ProtoCase& p : protos) {
    for (const NetCase& n : nets) {
      SystemConfig config;
      RandomWalkConfig walk;
      walk.num_streams = 400;
      walk.seed = 17;
      config.source = SourceSpec::Walk(walk);
      config.query = p.query;
      config.protocol = p.protocol;
      config.fraction = {p.eps, p.eps};
      config.rank_r = p.rank_r;
      config.duration = 2000 * scale;
      config.seed = 17;
      config.oracle.sample_interval = 20;
      auto net = ParseNetSpec(n.spec);
      ASF_CHECK_MSG(net.ok(), net.status().ToString().c_str());
      config.net = *net;
      configs.push_back(config);
    }
  }
  const std::vector<RunResult> results = bench::MustRunAll(configs);

  TextTable table({"protocol", "net", "maint_msgs", "crossings", "delivered",
                   "lost", "partitioned", "deploy_retx", "recon",
                   "viol_rate"});
  std::vector<std::pair<std::string, double>> metrics;
  double total_wall = 0.0;
  std::size_t i = 0;
  for (const ProtoCase& p : protos) {
    for (const NetCase& n : nets) {
      const RunResult& r = results[i++];
      const double viol_rate =
          r.oracle_checks > 0
              ? static_cast<double>(r.oracle_violations) /
                    static_cast<double>(r.oracle_checks)
              : 0.0;
      const double delivered_frac =
          r.net.crossings > 0
              ? static_cast<double>(r.net.delivered_crossings) /
                    static_cast<double>(r.net.crossings)
              : 1.0;
      const double retx_per_deploy =
          r.net.deploy_attempts > 0
              ? static_cast<double>(r.net.deploy_retransmits) /
                    static_cast<double>(r.net.deploy_attempts)
              : 0.0;
      table.AddRow({p.label, n.label, bench::Msgs(r.MaintenanceMessages()),
                    Fmt("%llu", (unsigned long long)r.net.crossings),
                    Fmt("%.3f", delivered_frac),
                    Fmt("%llu", (unsigned long long)r.net.dropped_loss),
                    Fmt("%llu", (unsigned long long)r.net.dropped_partition),
                    Fmt("%llu", (unsigned long long)r.net.deploy_retransmits),
                    Fmt("%llu", (unsigned long long)r.net.reconcile_deploys),
                    Fmt("%.3f", viol_rate)});
      const std::string key = std::string(p.label) + "_" + n.label;
      metrics.emplace_back(key + "_maint",
                           static_cast<double>(r.MaintenanceMessages()));
      metrics.emplace_back(key + "_delivered_frac", delivered_frac);
      metrics.emplace_back(key + "_dropped_loss",
                           static_cast<double>(r.net.dropped_loss));
      metrics.emplace_back(key + "_dropped_partition",
                           static_cast<double>(r.net.dropped_partition));
      metrics.emplace_back(key + "_deploy_retx_frac", retx_per_deploy);
      metrics.emplace_back(key + "_viol_rate", viol_rate);
      total_wall += r.wall_seconds;
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  bench::MaybeWriteCsv(table, "net_loss");

  metrics.emplace_back("total_wall_seconds", total_wall);
  return bench::FinishMicroBench(argc, argv, "BENCH_net_loss.json",
                                 "net_loss", metrics);
}

}  // namespace
}  // namespace asf

int main(int argc, char** argv) { return asf::Main(argc, argv); }
