#ifndef ASF_ENGINE_CHURN_H_
#define ASF_ENGINE_CHURN_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "engine/sim_core.h"

/// \file
/// Query-churn workloads: the server as a long-lived service.
///
/// The paper's model has queries arriving at a server, running under their
/// tolerance protocol, and leaving. A ChurnSpec describes that open
/// population statistically — Poisson arrivals, exponentially distributed
/// lifetimes, a weighted protocol/tolerance mix — and expands, fully
/// deterministically under its seed, into a concrete deployment schedule
/// (QueryDeployments with start/end windows) that RunMultiQuerySystem and
/// SimulationCore execute. `bench/churn_multiquery` and `asf_run --churn`
/// build their workloads this way.

namespace asf {

/// One entry of the protocol/tolerance mix a churn workload draws from.
struct ChurnMixEntry {
  double weight = 1.0;  ///< relative arrival share (need not sum to 1)
  ProtocolKind protocol = ProtocolKind::kFtNrp;
  QuerySpec::Type query_type = QuerySpec::Type::kRange;
  /// Rank flavor when query_type is kRank: kNearest draws a k-NN query
  /// point from the value geometry; kMax / kMin are top-k / bottom-k.
  RankKind rank_kind = RankKind::kNearest;
  /// Fraction tolerances for the FT protocols (ignored elsewhere).
  double eps_plus = 0.2;
  double eps_minus = 0.2;
  /// Rank slack for RTP (ignored elsewhere).
  std::size_t rank_r = 2;
  /// Rank requirement for the rank-query protocols.
  std::size_t k = 10;
  FtOptions ft;
  /// Broadcast cost model of the generated deployments (DESIGN.md §3,
  /// note 3).
  BroadcastCostModel broadcast = BroadcastCostModel::kPerRecipient;
  /// When true, every arrival of this entry uses `shape` verbatim (the
  /// caller pinned the query) instead of drawing its geometry from the
  /// spec; query_type/rank_kind/k above are ignored in favor of the
  /// shape's own.
  bool fixed_shape = false;
  QuerySpec shape;
};

/// Statistical description of an open query population.
struct ChurnSpec {
  /// Mean query arrivals per simulated time unit (Poisson process).
  double arrival_rate = 0.1;
  /// Mean query lifetime (exponential). Lifetimes extending beyond the
  /// run horizon simply never retire.
  double mean_lifetime = 200.0;
  /// Arrival window [window_start, window_end); window_end <= 0 means
  /// "until the run horizon".
  SimTime window_start = 0;
  SimTime window_end = 0;
  /// Hard cap on the number of arrivals (0 = unlimited).
  std::size_t max_queries = 0;
  /// Seed of the churn process — independent of the run seed, so the same
  /// schedule can be replayed over different workload randomness.
  std::uint64_t seed = 1;

  /// The protocol/tolerance mix; empty means a default FT-NRP range mix.
  std::vector<ChurnMixEntry> mix;

  /// Value-space geometry for generated queries: range centers and k-NN
  /// query points are drawn uniformly from [value_lo, value_hi], range
  /// widths uniformly from [range_width_min, range_width_max].
  double value_lo = 0.0;
  double value_hi = 1000.0;
  double range_width_min = 100.0;
  double range_width_max = 300.0;

  Status Validate() const;
};

/// Expands the spec into a deployment schedule for a run of length
/// `duration`: arrival times are a Poisson process over the arrival
/// window, each arrival draws a mix entry by weight, a query shape from
/// the spec's geometry, and an exponential lifetime. Deployments are
/// returned in arrival order, named "churn<i>". Deterministic in
/// (spec, duration).
Result<std::vector<QueryDeployment>> ExpandChurn(const ChurnSpec& spec,
                                                 SimTime duration);

/// Highest number of simultaneously live queries in a schedule (resolving
/// start < 0 against `query_start`) — the expected peak population of a
/// run before executing it.
std::size_t PeakConcurrency(const std::vector<QueryDeployment>& deployments,
                            SimTime query_start, SimTime duration);

}  // namespace asf

#endif  // ASF_ENGINE_CHURN_H_
