#include "common/simd.h"

#include <cstdio>
#include <cstdlib>

namespace asf {
namespace simd {

// These report the backend the *library* (and therefore the FilterArena
// crossing kernel) was compiled with. The header constants describe the
// including TU, which may be built without the library's vector flags —
// benches and tools must use these functions for attribution.
const char* KernelBackend() { return kBackend; }
int KernelLanes() { return kLanes; }

void AssertHostSupportsKernel() {
#if defined(__x86_64__) && (defined(__AVX512F__) || defined(__AVX2__))
  // The library was compiled with vector codegen (CMake ASF_NATIVE_SIMD);
  // fail with a diagnosis instead of SIGILL on the first dispatch when
  // the host CPU predates the ISA (pre-Haswell, low-end N-series, …).
  static const bool supported = [] {
#if defined(__AVX512F__)
    const bool ok = __builtin_cpu_supports("avx512f");
#else
    const bool ok = __builtin_cpu_supports("avx2");
#endif
    if (!ok) {
      std::fprintf(stderr,
                   "asf: this build's filter kernel requires %s, which "
                   "this CPU lacks — rebuild with -DASF_NATIVE_SIMD=OFF "
                   "for the portable scalar kernel\n",
                   kBackend);
      std::abort();
    }
    return ok;
  }();
  (void)supported;
#endif
}

}  // namespace simd
}  // namespace asf
