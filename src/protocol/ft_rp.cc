#include "protocol/ft_rp.h"

#include <cmath>

namespace asf {

FtRp::FtRp(ServerContext* ctx, const RankQuery& query,
           const FractionTolerance& tolerance, const FtOptions& options,
           Rng* rng)
    : Protocol(ctx),
      query_(query),
      tolerance_(tolerance),
      options_(options),
      rho_(SolveRho(tolerance, options.rho)),
      core_(ctx, options.heuristic, rng) {
  ASF_CHECK_MSG(tolerance.Validate().ok(), "invalid fraction tolerance");
  ASF_CHECK_MSG(query.k() <= ctx->num_streams(),
                "rank requirement k exceeds stream population");
}

void FtRp::Refresh(SimTime t) {
  ctx_->ProbeAll(t);
  const std::vector<ScoredStream> ranked = RankAll(query_, ctx_->cache());
  Interval bound;
  if (ranked.size() <= query_.k()) {
    bound = Interval::Always();
  } else {
    // The tightest deployable bound enclosing the k-th nearest neighbor:
    // halfway to the (k+1)-st (§5.2.1).
    const double radius =
        (ranked[query_.k() - 1].score + ranked[query_.k()].score) / 2.0;
    bound = query_.ScoreBall(radius);
  }
  // kρ+ false-positive and kρ− false-negative filters (§5.2.2; floors keep
  // the integer counts within the real-valued budgets).
  const std::size_t n_plus = static_cast<std::size_t>(
      std::floor(static_cast<double>(query_.k()) * rho_.rho_plus));
  const std::size_t n_minus = static_cast<std::size_t>(
      std::floor(static_cast<double>(query_.k()) * rho_.rho_minus));
  core_.InstallFilters(bound, n_plus, n_minus);
  // The answer-size band, tightened by the installed silent-filter counts
  // so that size drift and silent drift cannot jointly exceed the
  // tolerances (class comment / DESIGN.md §4).
  const KnnAnswerBounds paper = ComputeKnnAnswerBounds(query_.k(), tolerance_);
  bounds_.lo = paper.lo + static_cast<double>(n_plus);
  bounds_.hi =
      (static_cast<double>(query_.k()) - static_cast<double>(n_minus)) /
      (1.0 - tolerance_.eps_plus);
  ASF_DCHECK(bounds_.Contains(query_.k()));
}

void FtRp::Initialize(SimTime t) { Refresh(t); }

void FtRp::OnUpdate(StreamId id, Value v, SimTime t) {
  core_.OnRangeUpdate(id, v, t);
  // §5.2.3: R stays put while the answer size remains inside the band;
  // outside it, R is "too tight" or "too loose" and must be recomputed.
  const double size = static_cast<double>(core_.answer().size());
  if (size > bounds_.hi || size < bounds_.lo) {
    BumpReinit();
    Refresh(t);
  }
}

}  // namespace asf
