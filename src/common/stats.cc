#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace asf {

void OnlineStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::AddRepeated(double x, std::uint64_t k) {
  if (k == 0) return;
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  // Chan et al. pairwise update with a zero-variance batch of size k.
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(k);
  const double delta = x - mean_;
  mean_ += delta * n2 / (n1 + n2);
  m2_ += delta * delta * n1 * n2 / (n1 + n2);
  count_ += k;
  sum_ += x * n2;
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::Merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * n2 / (n1 + n2);
  m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

std::string OnlineStats::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.4g sd=%.4g min=%.4g max=%.4g",
                static_cast<unsigned long long>(count_), mean(), stddev(),
                min(), max());
  return buf;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)) {
  ASF_CHECK(hi > lo);
  ASF_CHECK(buckets > 0);
  counts_.assign(buckets, 0);
}

std::size_t Histogram::BucketOf(double x) const {
  if (x < lo_) return 0;
  if (x >= hi_) return counts_.size() - 1;
  const auto i = static_cast<std::size_t>((x - lo_) / width_);
  return std::min(i, counts_.size() - 1);
}

void Histogram::Add(double x) {
  ++counts_[BucketOf(x)];
  ++total_;
}

double Histogram::CumulativeFraction(double x) const {
  if (total_ == 0) return 0.0;
  const std::size_t b = BucketOf(x);
  std::uint64_t below = 0;
  for (std::size_t i = 0; i <= b; ++i) below += counts_[i];
  return static_cast<double>(below) / static_cast<double>(total_);
}

double Histogram::BucketLo(std::size_t i) const {
  ASF_CHECK(i < counts_.size());
  return lo_ + width_ * static_cast<double>(i);
}

}  // namespace asf
