#include "obs/telemetry.h"

#include <cstdio>

#include "metrics/table.h"

namespace asf {
namespace obs {

void TelemetryBlock::AppendRows(TextTable* table) const {
  for (const auto& [label, cell] : rows_) table->AddRow({label, cell});
}

void TelemetryBlock::PrintLines() const {
  for (const auto& [label, cell] : rows_) {
    std::printf("%s: %s\n", label.c_str(), cell.c_str());
  }
}

void TelemetryBlock::AppendMetrics(
    std::vector<std::pair<std::string, double>>* metrics) const {
  for (const auto& [key, value] : metrics_) metrics->emplace_back(key, value);
}

TelemetryBlock SpillTelemetryBlock(const SpillTelemetry& spill) {
  TelemetryBlock block;
  if (!spill.enabled) return block;
  block.Row("spill pool", Fmt("%zu pages (%s)", spill.buffer_pages,
                              spill.replacement.c_str()));
  block.Row("spill records out / back",
            Fmt("%llu / %llu", (unsigned long long)spill.records_spilled,
                (unsigned long long)spill.records_faulted));
  block.Row("spill bytes out / back",
            Fmt("%llu / %llu", (unsigned long long)spill.spilled_bytes,
                (unsigned long long)spill.faulted_bytes));
  block.Row("spill pool hit rate",
            Fmt("%.3f (%llu hits, %llu misses)", spill.PoolHitRate(),
                (unsigned long long)spill.pool_hits,
                (unsigned long long)spill.pool_misses));
  block.Row("spill evictions / write-backs",
            Fmt("%llu / %llu", (unsigned long long)spill.pool_evictions,
                (unsigned long long)spill.pool_write_backs));
  block.Row("spill resident / file bytes",
            Fmt("%llu / %llu", (unsigned long long)spill.pool_resident_bytes,
                (unsigned long long)spill.file_bytes));

  block.Metric("spill_buffer_pages", static_cast<double>(spill.buffer_pages));
  block.Metric("spill_records", static_cast<double>(spill.records_spilled));
  block.Metric("spill_faults", static_cast<double>(spill.records_faulted));
  block.Metric("spill_bytes", static_cast<double>(spill.spilled_bytes));
  block.Metric("spill_pool_hit_rate", spill.PoolHitRate());
  block.Metric("spill_pool_evictions",
               static_cast<double>(spill.pool_evictions));
  block.Metric("spill_pool_write_backs",
               static_cast<double>(spill.pool_write_backs));
  block.Metric("spill_resident_bytes",
               static_cast<double>(spill.pool_resident_bytes));
  block.Metric("spill_file_bytes", static_cast<double>(spill.file_bytes));
  return block;
}

TelemetryBlock NetTelemetryBlock(const NetConfig& config,
                                 const NetStats& stats,
                                 const NetRunExtras* extras) {
  TelemetryBlock block;

  if (extras == nullptr) {
    // Churn mode: the coarse totals-table block.
    if (!config.DelaysDelivery()) return block;
    block.Row("net model", config.ToString());
    block.Row("net msgs per flush", Fmt("%.2f", stats.MessagesPerFlush()));
    block.Row("net staleness mean", Fmt("%.3f", stats.delay.mean()));
    block.Row("net dropped (retired)",
              Fmt("%llu", (unsigned long long)stats.dropped_retired));
    block.Metric("net_kind",
                 static_cast<double>(static_cast<int>(config.kind)));
    block.Metric("net_msgs_per_flush", stats.MessagesPerFlush());
    block.Metric("net_staleness_mean", stats.delay.mean());
    block.Metric("net_dropped_retired",
                 static_cast<double>(stats.dropped_retired));
    return block;
  }

  // Single-query mode. Rows only under a delaying model, so default runs
  // print byte-identically to the pre-subsystem tool.
  if (config.DelaysDelivery()) {
    block.Row("net model", config.ToString());
    block.Row("net wire updates",
              Fmt("%llu", (unsigned long long)stats.update_messages));
    block.Row("net msgs per flush", Fmt("%.2f", stats.MessagesPerFlush()));
    block.Row("staleness mean / max",
              Fmt("%.3f / %.3f", extras->update_delay->mean(),
                  extras->update_delay->max()));
    if (extras->oracle_checks > 0) {
      block.Row(
          "violations in flight",
          Fmt("%llu",
              (unsigned long long)extras->oracle_violations_in_flight));
    }
    block.Row("in flight at horizon",
              Fmt("%llu", (unsigned long long)stats.in_flight_at_end));
    if (config.HasFaults()) {
      block.Row("crossings lost / partitioned",
                Fmt("%llu / %llu", (unsigned long long)stats.dropped_loss,
                    (unsigned long long)stats.dropped_partition));
      block.Row("stale payloads suppressed",
                Fmt("%llu", (unsigned long long)stats.suppressed_stale));
      block.Row("deploy retx / acks / unacked",
                Fmt("%llu / %llu / %llu",
                    (unsigned long long)stats.deploy_retransmits,
                    (unsigned long long)stats.deploy_acks,
                    (unsigned long long)stats.deploy_unacked_at_end));
      block.Row("probe retx / failovers",
                Fmt("%llu / %llu",
                    (unsigned long long)stats.probe_retransmits,
                    (unsigned long long)stats.probe_failovers));
      block.Row("reconcile exchanges / deploys",
                Fmt("%llu / %llu",
                    (unsigned long long)stats.reconcile_exchanges,
                    (unsigned long long)stats.reconcile_deploys));
    }

    block.Metric("net_kind",
                 static_cast<double>(static_cast<int>(config.kind)));
    block.Metric("net_wire_updates",
                 static_cast<double>(stats.update_messages));
    block.Metric("net_msgs_per_flush", stats.MessagesPerFlush());
    block.Metric("staleness_mean", extras->update_delay->mean());
    block.Metric("staleness_max", extras->update_delay->max());
    block.Metric("oracle_violations_in_flight",
                 static_cast<double>(extras->oracle_violations_in_flight));
    block.Metric("net_in_flight_at_end",
                 static_cast<double>(stats.in_flight_at_end));
  }
  // Fault metrics gate on HasFaults alone — NOT nested under
  // DelaysDelivery — preserving the historical bench-json schema (a
  // faults-only spec over an instant base still reports them).
  if (config.HasFaults()) {
    block.Metric("net_dropped_loss", static_cast<double>(stats.dropped_loss));
    block.Metric("net_dropped_partition",
                 static_cast<double>(stats.dropped_partition));
    block.Metric("net_suppressed_stale",
                 static_cast<double>(stats.suppressed_stale));
    block.Metric("net_deploy_retransmits",
                 static_cast<double>(stats.deploy_retransmits));
    block.Metric("net_deploy_acks", static_cast<double>(stats.deploy_acks));
    block.Metric("net_deploy_unacked_at_end",
                 static_cast<double>(stats.deploy_unacked_at_end));
    block.Metric("net_probe_retransmits",
                 static_cast<double>(stats.probe_retransmits));
    block.Metric("net_probe_failovers",
                 static_cast<double>(stats.probe_failovers));
    block.Metric("net_reconcile_exchanges",
                 static_cast<double>(stats.reconcile_exchanges));
    block.Metric("net_reconcile_deploys",
                 static_cast<double>(stats.reconcile_deploys));
  }
  return block;
}

}  // namespace obs
}  // namespace asf
