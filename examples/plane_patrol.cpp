/// Plane patrol: the 2-D extension in action (paper §7). A command post
/// watches 1500 vehicles moving on a 1000×1000 field with two continuous
/// queries:
///   * a rectangle geofence (2-D range query, FtRange2d with 20% fraction
///     tolerance) — which vehicles are inside the restricted sector?
///   * the 15 vehicles nearest the post (2-D k-NN through the
///     distance-stream reduction, FT-RP) — who can respond fastest?

#include <cstdio>

#include "engine/system.h"
#include "example_common.h"
#include "geo/distance_streams.h"
#include "geo/range2d.h"
#include "sim/scheduler.h"

int main() {
  const asf::Rect sector(600, 900, 600, 900);
  const asf::Point2 post{200, 200};

  // --- Query 1: geofence via the 2-D fraction-tolerance range protocol ---
  asf::PlaneWalkConfig walk_config;
  walk_config.num_streams = 1500;
  walk_config.sigma = 25;
  walk_config.seed = 61;
  {
    asf::PlaneWalkStreams walk(walk_config);
    asf::PlaneFilterBank filters(walk_config.num_streams);
    asf::MessageStats stats;

    asf::FtRange2d::Transport transport;
    transport.probe = [&](asf::StreamId id) {
      filters.at(id).SyncReference(walk.position(id));
      return walk.position(id);
    };
    transport.deploy = [&](asf::StreamId id, const asf::PlaneConstraint& c) {
      filters.Deploy(id, c, walk.position(id));
    };
    asf::FtRange2d geofence(walk_config.num_streams, sector,
                            asf::FractionTolerance{0.2, 0.2},
                            asf::SelectionHeuristic::kBoundaryNearest,
                            nullptr, transport, &stats);
    stats.set_phase(asf::MessagePhase::kInit);
    geofence.Initialize();
    stats.set_phase(asf::MessagePhase::kMaintenance);

    const double horizon = 2000 * asf_examples::Scale();
    asf::Scheduler sched;
    std::uint64_t worst_violations = 0;
    std::uint64_t checks = 0;
    walk.set_move_handler(
        [&](asf::StreamId id, const asf::Point2& p, asf::SimTime) {
          if (filters.at(id).OnMove(p)) {
            stats.Count(asf::MessageType::kValueUpdate);
            geofence.OnUpdate(id, p);
          }
        });
    // Periodic audit.
    std::function<void()> audit = [&] {
      ++checks;
      if (!asf::FtRange2d::CountErrors(walk.positions(), sector,
                                       geofence.answer())
               .Satisfies(asf::FractionTolerance{0.2, 0.2})) {
        ++worst_violations;
      }
      if (sched.now() + 20 <= horizon) sched.ScheduleAfter(20, audit);
    };
    sched.ScheduleAt(20, audit);
    walk.Start(&sched, horizon);
    sched.RunUntil(horizon);

    std::printf("Geofence %s over %zu vehicles (20%% tolerance):\n",
                sector.ToString().c_str(), walk.size());
    std::printf("  %llu maintenance messages for %llu moves; %zu vehicles "
                "currently flagged; audits %llu/%llu clean\n\n",
                (unsigned long long)stats.MaintenanceTotal(),
                (unsigned long long)walk.moves_generated(),
                geofence.answer().size(),
                (unsigned long long)(checks - worst_violations),
                (unsigned long long)checks);
  }

  // --- Query 2: nearest responders via the distance reduction ---
  {
    asf::PlaneWalkStreams walk(walk_config);
    asf::DistanceStreamSet distances(&walk, post);

    asf::SystemConfig config;
    config.source = asf::SourceSpec::Custom(&distances);
    config.query = asf::QuerySpec::BottomK(15);
    config.protocol = asf::ProtocolKind::kFtRp;
    config.fraction = {0.3, 0.3};
    config.duration = 2000 * asf_examples::Scale();
    config.oracle.sample_interval = 20;
    auto result = asf::RunSystem(config);
    if (!result.ok()) {
      std::fprintf(stderr, "k-NN run failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("15 nearest vehicles to the post (%g, %g) via FT-RP on the "
                "derived distance stream:\n",
                post.x, post.y);
    std::printf("  %llu maintenance messages, %llu bound recomputations, "
                "answer size %.1f on average, oracle %llu/%llu clean\n",
                (unsigned long long)result->MaintenanceMessages(),
                (unsigned long long)result->reinits,
                result->answer_size.mean(),
                (unsigned long long)(result->oracle_checks -
                                     result->oracle_violations),
                (unsigned long long)result->oracle_checks);
  }
  return 0;
}
