/// asf_tracegen — generate a synthetic wide-area TCP trace (the LBL
/// substitute, DESIGN.md §3) and write it as a trace CSV consumable by
/// `asf_run --replay=...` and by TraceStreams.
///
/// Examples:
///   asf_tracegen --out=tcp.csv
///   asf_tracegen --out=tcp.csv --subnets=800 --connections=606497
///                --duration=43200 --zipf=1.1 --seed=3
///   asf_tracegen --out=tcp.csv --inspect     # also print summary stats

#include <algorithm>
#include <cstdio>

#include "common/flags.h"
#include "common/stats.h"
#include "metrics/table.h"
#include "trace/tcp_synth.h"
#include "trace/trace_io.h"

namespace asf {
namespace {

constexpr const char* kHelp = R"(asf_tracegen -- synthesize a TCP-like trace CSV

  --out=FILE            output path (required)
  --subnets=N           subnet streams               [800]
  --connections=N       total connection records     [100000]
  --duration=T          trace duration in time units [10000]
  --zipf=S              subnet activity skew         [1.0]
  --bytes-mu=M          lognormal mu of bytes        [ln 500]
  --bytes-sigma=S       within-subnet log-stddev     [0.45]
  --subnet-sigma=S      across-subnet log-stddev     [1.4]
  --seed=N              seed                         [7]
  --inspect             print per-trace summary statistics
)";

Status RunFromFlags(const Flags& flags) {
  if (!flags.Has("out")) {
    return Status::InvalidArgument("--out=FILE is required");
  }
  TcpSynthConfig config;
  ASF_ASSIGN_OR_RETURN(const std::int64_t subnets,
                       flags.GetInt("subnets", 800));
  ASF_ASSIGN_OR_RETURN(const std::int64_t connections,
                       flags.GetInt("connections", 100000));
  ASF_ASSIGN_OR_RETURN(config.duration, flags.GetDouble("duration", 10000));
  ASF_ASSIGN_OR_RETURN(config.zipf_s, flags.GetDouble("zipf", 1.0));
  ASF_ASSIGN_OR_RETURN(config.bytes_log_mu,
                       flags.GetDouble("bytes-mu", config.bytes_log_mu));
  ASF_ASSIGN_OR_RETURN(config.bytes_log_sigma,
                       flags.GetDouble("bytes-sigma", config.bytes_log_sigma));
  ASF_ASSIGN_OR_RETURN(config.subnet_sigma,
                       flags.GetDouble("subnet-sigma", config.subnet_sigma));
  ASF_ASSIGN_OR_RETURN(const std::int64_t seed, flags.GetInt("seed", 7));
  if (subnets <= 0 || connections < 0) {
    return Status::InvalidArgument("--subnets/--connections must be positive");
  }
  config.num_subnets = static_cast<std::size_t>(subnets);
  config.total_connections = static_cast<std::uint64_t>(connections);
  config.seed = static_cast<std::uint64_t>(seed);

  ASF_ASSIGN_OR_RETURN(const TraceData trace, GenerateTcpTrace(config));
  const std::string out = flags.GetString("out");
  ASF_RETURN_IF_ERROR(WriteTraceCsv(trace, out));
  std::printf("wrote %zu records over %zu streams to %s\n",
              trace.records.size(), trace.num_streams, out.c_str());

  ASF_ASSIGN_OR_RETURN(const bool inspect, flags.GetBool("inspect", false));
  if (inspect) {
    OnlineStats bytes;
    std::vector<std::uint64_t> per_subnet(trace.num_streams, 0);
    for (const TraceRecord& rec : trace.records) {
      bytes.Add(rec.value);
      ++per_subnet[rec.stream];
    }
    std::sort(per_subnet.rbegin(), per_subnet.rend());
    TextTable table({"stat", "value"});
    table.AddRow({"bytes", bytes.ToString()});
    table.AddRow({"busiest subnet records",
                  Fmt("%llu", (unsigned long long)per_subnet.front())});
    table.AddRow({"median subnet records",
                  Fmt("%llu", (unsigned long long)
                                  per_subnet[per_subnet.size() / 2])});
    table.AddRow({"duration", Fmt("%g", trace.Duration())});
    std::printf("%s", table.ToString().c_str());
  }
  return Status::OK();
}

}  // namespace
}  // namespace asf

int main(int argc, char** argv) {
  auto flags = asf::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 2;
  }
  if (flags->Has("help")) {
    std::fputs(asf::kHelp, stdout);
    return 0;
  }
  const asf::Status status = asf::RunFromFlags(*flags);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n(try --help)\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
