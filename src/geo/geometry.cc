#include "geo/geometry.h"

#include <algorithm>

namespace asf {

double Rect::BoundaryDistance(const Point2& p) const {
  if (empty()) return kInf;
  if (Contains(p)) {
    // Inside: nearest edge in either axis.
    return std::min(x_.DistanceToBoundary(p.x), y_.DistanceToBoundary(p.y));
  }
  // Outside: Euclidean distance to the rectangle (clamp point into the
  // rect, measure the offset).
  const double cx = std::clamp(p.x, x_.lo(), x_.hi());
  const double cy = std::clamp(p.y, y_.lo(), y_.hi());
  return Distance(p, Point2{cx, cy});
}

}  // namespace asf
