#include "geo/range2d.h"

#include "protocol/heuristics.h"

namespace asf {

FtRange2d::FtRange2d(std::size_t num_streams, const Rect& query,
                     const FractionTolerance& tolerance,
                     SelectionHeuristic heuristic, Rng* rng,
                     Transport transport, MessageStats* stats)
    : num_streams_(num_streams),
      query_(query),
      tolerance_(tolerance),
      heuristic_(heuristic),
      rng_(rng),
      transport_(std::move(transport)),
      stats_(stats),
      cache_(num_streams) {
  ASF_CHECK(!query.empty());
  ASF_CHECK_MSG(tolerance.Validate().ok(), "invalid fraction tolerance");
  ASF_CHECK(stats != nullptr);
  ASF_CHECK(transport_.probe != nullptr);
  ASF_CHECK(transport_.deploy != nullptr);
}

Point2 FtRange2d::Probe(StreamId id) {
  stats_->Count(MessageType::kProbeRequest);
  const Point2 p = transport_.probe(id);
  stats_->Count(MessageType::kProbeResponse);
  cache_[id] = p;
  return p;
}

void FtRange2d::Deploy(StreamId id, const PlaneConstraint& constraint) {
  stats_->Count(MessageType::kFilterDeploy);
  transport_.deploy(id, constraint);
}

void FtRange2d::Initialize() {
  answer_.Clear();
  count_ = 0;
  fp_streams_.clear();
  fn_streams_.clear();

  std::vector<StreamId> inside;
  std::vector<StreamId> outside;
  for (StreamId id = 0; id < num_streams_; ++id) {
    Probe(id);
    if (query_.Contains(cache_[id])) {
      inside.push_back(id);
      answer_.Insert(id);
    } else {
      outside.push_back(id);
    }
  }

  // Equations 3-4 budgets, verbatim from the 1-D protocol.
  const std::size_t n_plus =
      MaxFalsePositiveFilters(answer_.size(), tolerance_);
  const std::size_t n_minus =
      MaxFalseNegativeFilters(answer_.size(), tolerance_);

  const auto boundary_distance = [this](StreamId id) {
    return query_.BoundaryDistance(cache_[id]);
  };
  fp_streams_ = SelectFilterHolders(inside, n_plus, heuristic_,
                                    boundary_distance, rng_);
  fn_streams_ = SelectFilterHolders(outside, n_minus, heuristic_,
                                    boundary_distance, rng_);

  std::vector<bool> silent(num_streams_, false);
  for (StreamId id : fp_streams_) {
    Deploy(id, PlaneConstraint::FalsePositive());
    silent[id] = true;
  }
  for (StreamId id : fn_streams_) {
    Deploy(id, PlaneConstraint::FalseNegative());
    silent[id] = true;
  }
  const PlaneConstraint rect_filter = PlaneConstraint::Bounds(query_);
  for (StreamId id = 0; id < num_streams_; ++id) {
    if (!silent[id]) Deploy(id, rect_filter);
  }
}

void FtRange2d::OnUpdate(StreamId id, const Point2& p) {
  cache_[id] = p;
  if (query_.Contains(p)) {
    const bool inserted = answer_.Insert(id);
    ASF_DCHECK(inserted);
    if (inserted) ++count_;
    return;
  }
  const bool erased = answer_.Erase(id);
  ASF_DCHECK(erased);
  if (!erased) return;
  if (count_ > 0) {
    --count_;
  } else {
    FixError();
  }
}

void FtRange2d::FixError() {
  ++fix_error_runs_;
  const PlaneConstraint rect_filter = PlaneConstraint::Bounds(query_);

  if (!fp_streams_.empty()) {
    const StreamId y = fp_streams_.back();
    fp_streams_.pop_back();
    const Point2 py = Probe(y);
    Deploy(y, rect_filter);
    if (query_.Contains(py)) return;  // true positive retained
    answer_.Erase(y);
  }
  if (!fn_streams_.empty()) {
    const StreamId z = fn_streams_.back();
    fn_streams_.pop_back();
    const Point2 pz = Probe(z);
    if (query_.Contains(pz)) answer_.Insert(z);
    Deploy(z, rect_filter);
  }
}

FractionCounts FtRange2d::CountErrors(const std::vector<Point2>& truth,
                                      const Rect& query,
                                      const AnswerSet& answer) {
  FractionCounts counts;
  counts.answer_size = answer.size();
  std::size_t satisfied_total = 0;
  for (StreamId id = 0; id < truth.size(); ++id) {
    if (query.Contains(truth[id])) ++satisfied_total;
  }
  std::size_t answered_correct = 0;
  for (StreamId id : answer) {
    ASF_DCHECK(id < truth.size());
    if (query.Contains(truth[id])) {
      ++answered_correct;
    } else {
      ++counts.false_positives;
    }
  }
  ASF_DCHECK(satisfied_total >= answered_correct);
  counts.false_negatives = satisfied_total - answered_correct;
  return counts;
}

}  // namespace asf
