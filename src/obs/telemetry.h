#ifndef ASF_OBS_TELEMETRY_H_
#define ASF_OBS_TELEMETRY_H_

#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "engine/spill_config.h"
#include "net/network_model.h"

/// \file
/// The single telemetry formatter (ISSUE 10 satellite): every consumer
/// of SpillTelemetry / NetStats renders through one TelemetryBlock
/// instead of hand-rolled printf blocks per tool. A block carries both
/// presentations of the same facts — human-readable rows and
/// machine-readable (key, value) metrics — so the table, the standalone
/// "spill " lines, and the bench-json metrics can never drift apart.
///
/// The builders reproduce the historical output byte-for-byte: labels,
/// formats, and gating (DelaysDelivery / HasFaults / oracle_checks) all
/// match what asf_run printed before this layer existed, because CI's
/// byte-identity diff legs and their grep normalizations depend on the
/// exact strings.

namespace asf {

class TextTable;

namespace obs {

class TelemetryBlock {
 public:
  void Row(std::string label, std::string cell) {
    rows_.emplace_back(std::move(label), std::move(cell));
  }
  void Metric(std::string key, double value) {
    metrics_.emplace_back(std::move(key), value);
  }

  /// Appends the rows to a summary table.
  void AppendRows(TextTable* table) const;
  /// Prints the rows as standalone "label: cell" lines (the spill
  /// telemetry style — kept out of tables so the byte-identity legs can
  /// strip them with a prefix grep).
  void PrintLines() const;
  /// Appends the metrics to a bench-json metric vector.
  void AppendMetrics(
      std::vector<std::pair<std::string, double>>* metrics) const;

  const std::vector<std::pair<std::string, std::string>>& rows() const {
    return rows_;
  }
  const std::vector<std::pair<std::string, double>>& metrics() const {
    return metrics_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> rows_;
  std::vector<std::pair<std::string, double>> metrics_;
};

/// Spill-path telemetry: six "spill ..." rows + nine spill_* metrics.
/// Empty when spilling is disabled.
TelemetryBlock SpillTelemetryBlock(const SpillTelemetry& spill);

/// The net facts only a single-query RunResult carries (null for churn
/// mode, which reports the coarser churn net rows).
struct NetRunExtras {
  /// Server-side staleness of *reported* updates (RunResult::update_delay)
  /// — distinct from NetStats::delay, which samples every payload.
  const OnlineStats* update_delay = nullptr;
  std::uint64_t oracle_checks = 0;
  std::uint64_t oracle_violations_in_flight = 0;
};

/// Delivery telemetry. With `extras` non-null this is asf_run's rich
/// single-query block (rows and metrics gated on DelaysDelivery, fault
/// rows additionally on HasFaults, fault *metrics* on HasFaults alone —
/// the historical gating, preserved exactly); with `extras` null it is
/// the churn-mode block (model, msgs per flush, staleness mean, dropped
/// retired).
TelemetryBlock NetTelemetryBlock(const NetConfig& config,
                                 const NetStats& stats,
                                 const NetRunExtras* extras);

}  // namespace obs
}  // namespace asf

#endif  // ASF_OBS_TELEMETRY_H_
