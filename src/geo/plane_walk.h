#ifndef ASF_GEO_PLANE_WALK_H_
#define ASF_GEO_PLANE_WALK_H_

#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "geo/geometry.h"
#include "sim/scheduler.h"

/// \file
/// 2-D stream sources: independent reflected Gaussian random walks in a
/// rectangle — the natural 2-D analogue of the paper's §6.2 model, used by
/// the multi-dimensional extension (location-monitoring scenarios where
/// each stream is a moving object's position).

namespace asf {

/// Parameters of the plane walk.
struct PlaneWalkConfig {
  std::size_t num_streams = 1000;
  double domain_lo = 0.0;    ///< square domain [lo, hi]²
  double domain_hi = 1000.0;
  double mean_interarrival = 20;
  double sigma = 20;         ///< per-axis step stddev
  std::uint64_t seed = 1;

  Status Validate() const;
};

/// A population of moving points.
class PlaneWalkStreams {
 public:
  using MoveHandler = std::function<void(StreamId, const Point2&, SimTime)>;

  explicit PlaneWalkStreams(const PlaneWalkConfig& config);

  std::size_t size() const { return positions_.size(); }
  const Point2& position(StreamId id) const {
    ASF_DCHECK(id < positions_.size());
    return positions_[id];
  }
  /// True positions of all streams (for oracles; protocols must observe
  /// positions only through messages).
  const std::vector<Point2>& positions() const { return positions_; }

  void set_move_handler(MoveHandler handler) {
    handler_ = std::move(handler);
  }

  /// Schedules the walks on `scheduler` up to `horizon`.
  void Start(Scheduler* scheduler, SimTime horizon);

  std::uint64_t moves_generated() const { return moves_; }

 private:
  void StepStream(Scheduler* scheduler, StreamId id, SimTime horizon);
  double Reflect(double v) const;

  PlaneWalkConfig config_;
  Rng rng_;
  std::vector<Point2> positions_;
  MoveHandler handler_;
  std::uint64_t moves_ = 0;
};

}  // namespace asf

#endif  // ASF_GEO_PLANE_WALK_H_
