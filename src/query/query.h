#ifndef ASF_QUERY_QUERY_H_
#define ASF_QUERY_QUERY_H_

#include <cstddef>
#include <string>

#include "common/check.h"
#include "common/interval.h"
#include "common/types.h"

/// \file
/// Entity-based continuous queries (paper §3.2).
///
/// * RangeQuery — the non-rank-based example: report streams whose values
///   lie in a closed interval [l, u].
/// * RankQuery  — the rank-based example: k-NN around a query point q,
///   where "a k-NN query can be easily transformed to a k-minimum or
///   k-maximum query by setting q to −∞ or +∞". We make that transformation
///   explicit with a score geometry: every stream gets a *score* (lower is
///   better); the k best scores answer the query, and the region
///   {v : score(v) ≤ d} maps back to a value-space interval used as the
///   filter bound R.

namespace asf {

/// Continuous range query: answer = {S_i : V_i ∈ [l, u]}.
class RangeQuery {
 public:
  explicit RangeQuery(const Interval& range) : range_(range) {
    ASF_CHECK_MSG(!range.empty(), "range query interval must be non-empty");
  }
  RangeQuery(Value lo, Value hi) : RangeQuery(Interval(lo, hi)) {}

  const Interval& range() const { return range_; }
  bool Matches(Value v) const { return range_.Contains(v); }

  std::string ToString() const { return "range " + range_.ToString(); }

 private:
  Interval range_;
};

/// Flavor of a rank-based query.
enum class RankKind : int {
  kNearest = 0,  ///< k nearest to a finite query point q: score = |v − q|
  kMax = 1,      ///< top-k by value (q = +∞): score = −v
  kMin = 2,      ///< bottom-k by value (q = −∞): score = v
};

/// Continuous rank-based query with rank requirement k (paper §3.2(1)).
class RankQuery {
 public:
  /// k-NN around a finite query point.
  static RankQuery NearestNeighbors(std::size_t k, Value q) {
    return RankQuery(RankKind::kNearest, k, q);
  }
  /// Top-k (k highest values).
  static RankQuery TopK(std::size_t k) {
    return RankQuery(RankKind::kMax, k, kInf);
  }
  /// Bottom-k (k lowest values).
  static RankQuery BottomK(std::size_t k) {
    return RankQuery(RankKind::kMin, k, -kInf);
  }

  RankKind kind() const { return kind_; }
  std::size_t k() const { return k_; }

  /// The query point (finite only for kNearest).
  Value query_point() const { return q_; }

  /// The ranking score of a value; lower scores rank higher. For kNearest
  /// this is the distance |v − q| the paper ranks by.
  double Score(Value v) const {
    switch (kind_) {
      case RankKind::kNearest:
        return v >= q_ ? v - q_ : q_ - v;
      case RankKind::kMax:
        return -v;
      case RankKind::kMin:
        return v;
    }
    ASF_CHECK(false);
    return 0;
  }

  /// The value-space region {v : Score(v) ≤ threshold}; this is the bound R
  /// deployed as a filter constraint. For kNearest it is the interval
  /// [q − d, q + d] of paper Figure 5 (Deploy_bound), and a negative
  /// threshold yields the empty interval (distances cannot be negative).
  /// For kMax/kMin the score is a raw (possibly negative) value and every
  /// finite threshold yields a half-infinite ray. A threshold of +inf
  /// always yields [−∞, ∞].
  Interval ScoreBall(double threshold) const {
    switch (kind_) {
      case RankKind::kNearest:
        if (threshold < 0) return Interval::Never();
        if (threshold == kInf) return Interval::Always();
        return Interval(q_ - threshold, q_ + threshold);
      case RankKind::kMax:
        return Interval(-threshold, kInf);
      case RankKind::kMin:
        return Interval(-kInf, threshold);
    }
    ASF_CHECK(false);
    return Interval::Never();
  }

  std::string ToString() const;

 private:
  RankQuery(RankKind kind, std::size_t k, Value q) : kind_(kind), k_(k), q_(q) {
    ASF_CHECK_MSG(k > 0, "rank requirement k must be positive");
    if (kind == RankKind::kNearest) {
      ASF_CHECK_MSG(q_ == q_ && q_ != kInf && q_ != -kInf,
                    "k-NN query point must be finite");
    }
  }

  RankKind kind_;
  std::size_t k_;
  Value q_;
};

}  // namespace asf

#endif  // ASF_QUERY_QUERY_H_
