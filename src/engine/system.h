#ifndef ASF_ENGINE_SYSTEM_H_
#define ASF_ENGINE_SYSTEM_H_

#include <memory>

#include "common/result.h"
#include "engine/config.h"
#include "engine/run_result.h"

/// \file
/// The top-level entry point: wire streams, filters, channel, server and
/// protocol together (paper Figure 3) and run the simulation.
///
/// Quickstart:
/// \code
///   asf::SystemConfig config;
///   config.source = asf::SourceSpec::Walk({.num_streams = 1000});
///   config.query = asf::QuerySpec::Range(400, 600);
///   config.protocol = asf::ProtocolKind::kFtNrp;
///   config.fraction = {.eps_plus = 0.2, .eps_minus = 0.2};
///   config.duration = 2000;
///   auto result = asf::RunSystem(config);
///   if (result.ok()) std::cout << result->MaintenanceMessages() << "\n";
/// \endcode

namespace asf {

/// Builds and runs one simulated system. Returns the aggregated result, or
/// an error status for invalid configurations.
Result<RunResult> RunSystem(const SystemConfig& config);

}  // namespace asf

#endif  // ASF_ENGINE_SYSTEM_H_
