#include "filter/filter_arena.h"

#include <utility>

namespace asf {

std::size_t FilterArena::Acquire() {
  if (live_ == capacity_) {
    // Grow by doubling. Live columns keep their indices; only the row
    // stride changes, so copy row by row into the wider layout.
    const std::size_t new_capacity = capacity_ == 0 ? 1 : capacity_ * 2;
    std::vector<Filter> grown(num_streams_ * new_capacity);
    for (std::size_t s = 0; s < num_streams_; ++s) {
      for (std::size_t c = 0; c < live_; ++c) {
        grown[s * new_capacity + c] = storage_[s * capacity_ + c];
      }
    }
    storage_ = std::move(grown);
    capacity_ = new_capacity;
    ++generation_;  // every outstanding view now points at freed memory
  }
  const std::size_t column = live_++;
  // Recycled columns must come up pristine: a retiring tenant leaves its
  // last filter states behind.
  for (std::size_t s = 0; s < num_streams_; ++s) {
    storage_[s * capacity_ + column] = Filter();
  }
  return column;
}

std::size_t FilterArena::Release(std::size_t column) {
  ASF_CHECK(column < live_);
  const std::size_t last = live_ - 1;
  if (column != last) {
    // Keep the live prefix dense: the last tenant moves into the hole.
    for (std::size_t s = 0; s < num_streams_; ++s) {
      storage_[s * capacity_ + column] = storage_[s * capacity_ + last];
    }
  }
  --live_;
  // The released column's views (and, after a move, the last column's) are
  // stale either way.
  ++generation_;
  return last;
}

}  // namespace asf
